/// \file simulator.h
/// The gate-by-gate sampling simulator — the paper's core contribution
/// (Secs. 2–3), templated over the state representation.
///
/// Algorithm (Bravyi–Gosset–Liu, sketched in Sec. 2 of the paper):
///   1. b ← 0...0 (a "hidden variable" sample of the instantaneous
///      output distribution).
///   2. For each gate: apply it to the state; enumerate the candidate
///      bitstrings that vary b over the gate's support; resample b from
///      the candidates' bitstring probabilities.
///   3. The final b is a sample of |⟨b|ψ_f⟩|².
///
/// Exactly like the Python package, a Simulator is assembled from three
/// ingredients (Sec. 3.1): an initial state of any representation, an
/// `apply_op` function, and a `compute_probability` function. For the
/// library's own state types the two functions default to the
/// ADL-discovered free functions each backend provides, and the
/// simulator can additionally use backend members for exact channel
/// branching and measurement collapse.
///
/// Features reproduced from Sec. 3.2:
///  - automatic sample parallelization (3.2.3): on unitary circuits with
///    terminal measurements, all repetitions evolve one state while a
///    bitstring→multiplicity dictionary is resampled per gate via exact
///    multinomial splitting, so cost saturates once the dictionary
///    reaches the 2^n unique-bitstring ceiling (Fig. 2);
///  - quantum trajectories for channels and mid-circuit measurements
///    (3.2.1): per-repetition evolution. Channels use a *joint*
///    Kraus-branch × candidate update (equivalent to running BGLS on the
///    channel's unitary dilation and discarding the environment bit),
///    which keeps the hidden-variable coupling exact even for non-unital
///    channels. Mid-circuit measurements read their outcome off the
///    current bitstring — a faithful sample by the BGL invariant — and
///    collapse the state accordingly;
///  - optional skipping of diagonal-gate updates: a diagonal unitary
///    rescales every candidate amplitude by a unit-modulus phase, so the
///    candidate distribution is unchanged and the resampling step can be
///    elided exactly (ablated in the bench suite).

#pragma once

#include <algorithm>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "circuit/circuit.h"
#include "core/checkpoint.h"
#include "core/progress.h"
#include "core/result.h"
#include "engine/context.h"  // the reusable pool cached behind the simulator
#include "obs/trace.h"
#include "util/bits.h"
#include "util/cancellation.h"
#include "util/error.h"
#include "util/fault.h"
#include "util/rng.h"

namespace bgls {

template <typename State>
class BatchEngine;  // engine/engine.h — included at the end of this file

/// The Sec. 3.2.3 bitstring→multiplicity dictionary the batched sampler
/// resamples per gate.
using BatchDictionary = std::map<Bitstring, std::uint64_t>;

/// Per-RNG-stream shard counters, filled by the BatchEngine (engine.h)
/// when a run is sharded across streams.
struct StreamStats {
  /// Independent state evolutions executed in this shard (0 on the
  /// engine's snapshot-sharing batched path, where one shared evolution
  /// serves every shard).
  std::size_t trajectories = 0;
  /// apply_op invocations executed in this shard.
  std::size_t state_applications = 0;
  /// compute_probability invocations executed in this shard.
  std::size_t probability_evaluations = 0;
};

/// Instrumentation counters for the most recent run (used by the Fig. 2
/// bench to demonstrate dictionary saturation and by the cost-model
/// microbenches).
struct RunStats {
  /// Number of apply_op invocations across all trajectories.
  std::size_t state_applications = 0;
  /// Number of compute_probability invocations.
  std::size_t probability_evaluations = 0;
  /// Peak unique-bitstring dictionary size (≤ 2^n; Sec. 3.2.3).
  std::size_t max_dictionary_size = 0;
  /// Number of independent state evolutions (1 when parallelized).
  std::size_t trajectories = 0;
  /// Whether the dictionary-batched path was used.
  bool used_sample_parallelization = false;
  /// Candidate updates skipped because the gate was diagonal.
  std::size_t diagonal_updates_skipped = 0;
  /// Worker threads the run was executed with (1 for the serial path).
  std::size_t threads_used = 1;
  /// Per-stream shard counters in shard order (empty on the serial
  /// path; one entry per RNG stream on engine runs).
  std::vector<StreamStats> per_stream;
  /// Why the runtime layer routed this run to its backend — filled by
  /// Session for kAuto requests, including every job of a run_batch, so
  /// per-job routing decisions survive into stats reporting (the
  /// service daemon's stats endpoint). Empty for direct templated runs
  /// and explicit backend picks.
  std::string selection_reason;
  /// Phase wall times, milliseconds. Scheduling-dependent (unlike the
  /// counters above) and therefore excluded from the byte-stable run
  /// reports; surfaced by `bgls_run --verbose` and the daemon's status
  /// op. queue_wait_ms is filled by the service scheduler (time from
  /// admission to run start; 0 for direct Session calls); optimize_ms
  /// and sample_ms by Session::run (circuit fusion / backend dispatch);
  /// evolve_ms by the engine's shared-snapshot batched path (gate
  /// applies on the shared state, a subset of sample_ms).
  double queue_wait_ms = 0.0;
  double optimize_ms = 0.0;
  double evolve_ms = 0.0;
  double sample_ms = 0.0;
};

/// Tuning knobs.
struct SimulatorOptions {
  /// When true, the candidate-resampling step is skipped for gates that
  /// are diagonal in the computational basis (exact; see file comment).
  bool skip_diagonal_updates = false;
  /// Force-disable the dictionary batching of Sec. 3.2.3 even when the
  /// circuit allows it (used by the Fig. 2 ablation).
  bool disable_sample_parallelization = false;
  /// Worker threads for multi-repetition runs: 1 (default) keeps the
  /// classic serial path, 0 auto-detects hardware concurrency, N > 1
  /// routes run()/sample() through the BatchEngine (engine/engine.h).
  /// Engine results are bit-identical for every thread count >= 1 given
  /// the same seed and num_rng_streams; only the serial num_threads == 1
  /// path draws from a different (single) stream.
  int num_threads = 1;
  /// Number of deterministic RNG shards an engine run is split into.
  /// This — not the thread count — fixes the sampled values, so keep it
  /// constant when comparing runs across machines or thread counts.
  std::uint64_t num_rng_streams = 16;
  /// Reuse one long-lived thread pool across engine runs: the pool is
  /// cached process-wide per thread count behind a shared EngineContext
  /// (engine/context.h), and copying a Simulator shares its context.
  /// false restores the v1 behavior — a fresh pool per delegated run —
  /// which the fig2 pool-reuse bench measures against. Never affects
  /// the sampled values, only where the threads come from.
  bool reuse_thread_pool = true;
  /// run_batch scheduling granularity: true (default) schedules one
  /// pool job per (circuit, repetition-shard) pair so a few large
  /// trajectory circuits still saturate the pool; false schedules one
  /// job per circuit and runs its shards serially inside it. The shard
  /// decomposition is identical in both modes, so results are
  /// bit-identical either way.
  bool two_level_batch_sharding = true;
  /// Cooperative stop handle, polled at bounded intervals (per gate on
  /// the trajectory and dictionary-batched loops; additionally per
  /// shard/chunk in the engine). Inert by default. Scheduling-only: an
  /// aborted run throws CancelledError/DeadlineExceededError and
  /// discards its partial work; it never alters what an uncancelled run
  /// samples, nor any shared state later runs depend on.
  CancellationToken cancel_token{};
  /// Streaming partial histograms (core/progress.h): run() emits
  /// cumulative per-key histograms every `progress.every` completed
  /// repetitions in canonical shard order. sample()/run_batch ignore
  /// it. Observation-only: never changes the sampled records.
  ProgressOptions progress{};
  /// Optional telemetry trace (obs/trace.h) the engine records shard
  /// and phase spans into; non-owning, may be null. Observation-only:
  /// spans time existing work and never touch RNG state, so a traced
  /// run samples exactly what an untraced one does.
  obs::Trace* trace = nullptr;
  /// Checkpoint capture (core/checkpoint.h): run() emits resumable
  /// RunCheckpoint snapshots every `checkpoint.every` completed
  /// repetitions within a shard plus at shard completion.
  /// sample()/run_batch ignore it. Observation-only: capture never
  /// changes the sampled records.
  CheckpointOptions checkpoint{};
  /// Resume a previous run from its checkpoint: run() validates the
  /// checkpoint against this request's shape (mode, totals, shard
  /// count) and continues it, producing a final histogram and report
  /// counters bit-identical to the uninterrupted run. The request must
  /// carry the same circuit/seed/num_rng_streams as the checkpointed
  /// one. Intermediate progress updates are suppressed on a resumed
  /// run; the final update still fires.
  std::shared_ptr<const RunCheckpoint> resume{};
};

/// Gate-by-gate sampler over an arbitrary state representation.
///
/// State requirements (checked at compile time where used):
///  - copy-constructible (fresh copy per run / trajectory);
///  - ADL-visible `apply_op(const Operation&, State&, Rng&)` and
///    `compute_probability(const State&, Bitstring)` — or explicit
///    callables passed to the constructor (the Python package's API);
///  - optional members for full feature support:
///      `project(std::span<const Qubit>, Bitstring)` (mid-circuit
///      measurement), `apply_matrix(const Matrix&, std::span<const
///      Qubit>)` + `renormalize()` (exact channel branching).
template <typename State>
class Simulator {
 public:
  using ApplyOpFn = std::function<void(const Operation&, State&, Rng&)>;
  using ProbabilityFn = std::function<double(const State&, Bitstring)>;

  /// Builds a simulator whose apply/probability hooks are the backend's
  /// ADL free functions.
  explicit Simulator(State initial_state, SimulatorOptions options = {})
      : initial_state_(std::move(initial_state)),
        options_(options),
        apply_op_([](const Operation& op, State& s, Rng& rng) {
          apply_op(op, s, rng);
        }),
        compute_probability_([](const State& s, Bitstring b) {
          return compute_probability(s, b);
        }),
        hooks_are_native_(true) {}

  /// The paper's three-ingredient constructor: initial state, apply_op,
  /// compute_probability. With custom hooks the simulator treats the
  /// state as a black box: channels are routed through `apply` followed
  /// by a standard candidate update.
  Simulator(State initial_state, ApplyOpFn apply, ProbabilityFn probability,
            SimulatorOptions options = {})
      : initial_state_(std::move(initial_state)),
        options_(options),
        apply_op_(std::move(apply)),
        compute_probability_(std::move(probability)),
        hooks_are_native_(false) {}

  /// Runs the circuit end-to-end `repetitions` times and returns the
  /// measurement records, mirroring cirq.Simulator.run. The circuit must
  /// contain at least one measurement and must be fully resolved.
  Result run(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    if (options_.num_threads != 1 && repetitions > 1) {
      return run_with_engine(
          [&](BatchEngine<State>& engine) {
            return engine.run(circuit, repetitions, rng);
          });
    }
    validate(circuit, /*require_measurements=*/true);
    options_.cancel_token.throw_if_stopped();
    const RunCheckpoint* resume = options_.resume.get();
    // A resumed run suppresses intermediate progress updates (the
    // pre-interruption prefix already streamed them) and emits only the
    // final one.
    const bool streaming = options_.progress.enabled() && resume == nullptr;
    const bool checkpointing = options_.checkpoint.enabled();
    Result result;
    declare_measurement_keys(circuit, result);
    if (can_parallelize(circuit)) {
      // The dictionary-batched path is shard-atomic: every repetition
      // completes together at the final gate, so checkpoints exist only
      // at 0 (entry RNG state) and at completion.
      Counts counts;
      std::array<std::uint64_t, 4> engine_state = rng.state();
      if (resume != nullptr) {
        validate_resume(*resume, CheckpointMode::kSerialBatched, repetitions,
                        1);
        const ShardCheckpoint& shard = resume->shards.front();
        if (shard.completed == repetitions && repetitions > 0) {
          // Already finished: rebuild the result and counters from the
          // checkpoint without sampling.
          restore_result_histograms(result, shard.histograms);
          apply_checkpoint_stats(stats_, resume->stats);
          stats_.used_sample_parallelization = true;
          if (options_.progress.enabled()) {
            emit_final_progress(result, repetitions);
          }
          return result;
        }
        Rng restored = Rng::from_state(shard.rng_state);
        engine_state = shard.rng_state;
        counts = sample_parallel(circuit, repetitions, restored);
      } else {
        if (checkpointing) {
          emit_serial_checkpoint(CheckpointMode::kSerialBatched, repetitions,
                                 0, engine_state, {});
        }
        counts = sample_parallel(circuit, repetitions, rng);
      }
      for (const auto& [bits, count] : counts) {
        for (const auto& op : circuit.all_operations()) {
          if (!op.gate().is_measurement()) continue;
          result.add_records(op.gate().measurement_key(),
                             pack_key_bits(bits, op.qubits()), count);
        }
      }
      if (checkpointing) {
        emit_serial_checkpoint(CheckpointMode::kSerialBatched, repetitions,
                               repetitions, engine_state,
                               key_histograms(result));
      }
      // Dictionary batching completes every repetition together at the
      // final gate, so streaming degenerates to the one final update.
      if (options_.progress.enabled()) emit_final_progress(result, repetitions);
      return result;
    }
    std::map<std::string, Counts> cumulative;
    std::uint64_t start = 0;
    Rng resumed_rng;
    Rng* engine = &rng;
    if (resume != nullptr) {
      validate_resume(*resume, CheckpointMode::kSerial, repetitions, 1);
      const ShardCheckpoint& shard = resume->shards.front();
      start = shard.completed;
      restore_result_histograms(result, shard.histograms);
      cumulative = shard.histograms;
      apply_checkpoint_stats(stats_, resume->stats);
      resumed_rng = Rng::from_state(shard.rng_state);
      engine = &resumed_rng;
    }
    const bool track = streaming || checkpointing;
    for (std::uint64_t rep = start; rep < repetitions; ++rep) {
      // Deterministic mid-run abort hook for crash-safety tests
      // (util/fault.h); inert unless armed.
      fault::throw_if_fails("shard_run");
      run_one_trajectory(circuit, *engine, &result);
      const std::uint64_t done = rep + 1;
      if (track) {
        for (const std::string& key : result.keys()) {
          ++cumulative[key][result.values(key).back()];
        }
      }
      // Canonical single-shard checkpoints: every `every` repetitions
      // plus the final one (see core/progress.h). Streaming and
      // checkpoint capture walk their own cadences independently.
      if (streaming &&
          (done % options_.progress.every == 0 || done == repetitions)) {
        ProgressUpdate update;
        update.completed_repetitions = done;
        update.total_repetitions = repetitions;
        update.final = done == repetitions;
        update.histograms = cumulative;
        options_.progress.sink(update);
      }
      if (checkpointing &&
          (done % options_.checkpoint.every == 0 || done == repetitions)) {
        emit_serial_checkpoint(CheckpointMode::kSerial, repetitions, done,
                               engine->state(), cumulative);
      }
    }
    if (options_.progress.enabled() && resume != nullptr) {
      emit_final_progress(result, repetitions);
    }
    if (streaming && repetitions == 0) emit_final_progress(result, 0);
    return result;
  }

  /// Convenience overload with a seed instead of an engine.
  Result run(const Circuit& circuit, std::uint64_t repetitions = 1,
             std::uint64_t seed = 0) {
    Rng rng(seed);
    return run(circuit, repetitions, rng);
  }

  /// Samples final bitstrings over *all* qubits, ignoring measurement
  /// gates (the form the paper's runtime benchmarks use). Returns
  /// outcome counts.
  Counts sample(const Circuit& circuit, std::uint64_t repetitions, Rng& rng) {
    if (options_.num_threads != 1 && repetitions > 1) {
      return run_with_engine(
          [&](BatchEngine<State>& engine) {
            return engine.sample(circuit, repetitions, rng);
          });
    }
    validate(circuit, /*require_measurements=*/false);
    if (can_parallelize(circuit)) {
      return sample_parallel(circuit, repetitions, rng);
    }
    Counts counts;
    for (std::uint64_t rep = 0; rep < repetitions; ++rep) {
      ++counts[run_one_trajectory(circuit, rng, nullptr)];
    }
    return counts;
  }

  /// Asynchronous run(): schedules the whole run as a job on the
  /// persistent process-wide pool and returns immediately with a future
  /// over the merged Result. Bit-identical to
  /// `run(circuit, repetitions, seed)` by construction — the job runs a
  /// full copy of this simulator through the ordinary synchronous
  /// run(), so it makes the same serial-vs-engine path choice
  /// (num_threads, repetitions) and draws the same records. Async jobs
  /// do not update last_run_stats() (that would race between in-flight
  /// jobs); use BatchEngine::submit() when the per-run stats are
  /// needed. Thread-safe against other run_async calls.
  [[nodiscard]] std::future<Result> run_async(Circuit circuit,
                                              std::uint64_t repetitions,
                                              std::uint64_t seed);

  /// Counters from the most recent run()/sample() call.
  [[nodiscard]] const RunStats& last_run_stats() const { return stats_; }

  /// Current tuning knobs.
  [[nodiscard]] const SimulatorOptions& options() const { return options_; }

  /// Replaces the tuning knobs (used by the engine to force per-shard
  /// runs onto the serial path).
  void set_options(SimulatorOptions options) { options_ = options; }

  /// True when run()/sample() would take the dictionary-batched path of
  /// Sec. 3.2.3 for this circuit. The engine uses this to pick between
  /// the multinomial (batched) and even (trajectory) repetition splits.
  [[nodiscard]] bool can_parallelize_samples(const Circuit& circuit) const {
    return can_parallelize(circuit);
  }

  /// The (unevolved) initial state the sampler copies per run. The
  /// engine's snapshot-sharing batched path evolves one copy of it.
  [[nodiscard]] const State& initial_state() const { return initial_state_; }

  /// The apply_op ingredient (used by the engine to evolve the shared
  /// snapshot).
  [[nodiscard]] const ApplyOpFn& apply_fn() const { return apply_op_; }

  /// True when both hooks are the library defaults. Native
  /// compute_probability is a pure function of (state, bitstring), so
  /// the engine may invoke it concurrently against one shared state;
  /// user-provided hooks carry no such guarantee, so the engine keeps
  /// them on the v1 path — private per-shard states, still parallel
  /// across the pool.
  [[nodiscard]] bool hooks_are_native() const { return hooks_are_native_; }

  /// The lazily acquired engine context (null until a multi-threaded
  /// run first needs a pool). Copies of this simulator share it.
  [[nodiscard]] const std::shared_ptr<EngineContext>& engine_context() const {
    return engine_context_;
  }

  /// Throws unless `circuit` is runnable (parameters resolved, and
  /// measured when `require_measurements`). Shared precondition of the
  /// serial paths and the engine's snapshot path.
  void check_runnable(const Circuit& circuit, bool require_measurements) const {
    BGLS_REQUIRE(!circuit.is_parameterized(),
                 "circuit has unresolved parameters; resolve() it first");
    BGLS_REQUIRE(!require_measurements || circuit.has_measurements(),
                 "circuit has no measurements to sample; append measure()");
  }

  /// One Sec. 3.2.3 dictionary-resampling step against an already
  /// evolved state: splits every unique bitstring's multiplicity across
  /// its candidates with exact multinomial draws from `rng`, replacing
  /// `dictionary` in place. Returns the number of probability
  /// evaluations performed. Const and re-entrant — the engine calls it
  /// concurrently from many shards against one shared read-only state,
  /// but only when hooks_are_native() (native compute_probability hooks
  /// are pure functions of their arguments); with user-provided hooks
  /// the engine falls back to v1 per-shard private states and never
  /// shares a snapshot.
  std::size_t resample_dictionary(const State& state, const Operation& op,
                                  BatchDictionary& dictionary,
                                  Rng& rng) const {
    const auto support = support_of(op);
    BatchDictionary next;
    std::array<double, (1u << kMaxGateArity)> weights{};
    std::array<std::uint64_t, (1u << kMaxGateArity)> counts{};
    std::size_t evaluations = 0;
    for (const auto& [bits, multiplicity] : dictionary) {
      const CandidateList candidates = expand_candidates(bits, support);
      const auto n = static_cast<std::size_t>(candidates.count);
      for (std::size_t i = 0; i < n; ++i) {
        weights[i] = compute_probability_(state, candidates.values[i]);
      }
      evaluations += n;
      rng.multinomial(multiplicity, {weights.data(), n}, {counts.data(), n});
      for (std::size_t i = 0; i < n; ++i) {
        if (counts[i] > 0) next[candidates.values[i]] += counts[i];
      }
    }
    dictionary.swap(next);
    return evaluations;
  }

  /// Extracts a key's packed value from a full bitstring: bit j of the
  /// result is b[qubits[j]]. (Public: the engine packs measurement
  /// records from merged shard histograms with the same convention.)
  [[nodiscard]] static Bitstring pack_key_bits(Bitstring b,
                                               std::span<const Qubit> qubits) {
    Bitstring packed = 0;
    for (std::size_t j = 0; j < qubits.size(); ++j) {
      packed = with_bit(packed, static_cast<int>(j), get_bit(b, qubits[j]));
    }
    return packed;
  }

 private:
  /// Routes a multi-repetition call through a BatchEngine sharing the
  /// cached context and adopts its merged counters so last_run_stats()
  /// stays meaningful.
  template <typename Body>
  auto run_with_engine(Body&& body) {
    BatchEngine<State> engine = make_engine();
    auto result = body(engine);
    stats_ = engine.last_run_stats();
    return result;
  }

  /// Builds an engine around a copy of this simulator. With
  /// reuse_thread_pool the engine shares this simulator's cached
  /// process-wide context (acquired on first use, re-acquired if the
  /// configured thread count changed); otherwise the engine creates a
  /// private pool per run — the v1 behavior.
  BatchEngine<State> make_engine();

  void validate(const Circuit& circuit, bool require_measurements) {
    check_runnable(circuit, require_measurements);
    stats_ = RunStats{};
  }

  [[nodiscard]] bool can_parallelize(const Circuit& circuit) const {
    // Sec. 3.2.3: one shared state only works when the state evolution
    // is deterministic (no channels, no classical feed-forward) and
    // nothing acts after measurement.
    if (options_.disable_sample_parallelization || circuit.has_channels() ||
        !circuit.measurements_are_terminal()) {
      return false;
    }
    for (const auto& op : circuit.all_operations()) {
      if (op.is_classically_controlled()) return false;
    }
    return true;
  }

  [[nodiscard]] static std::vector<int> support_of(const Operation& op) {
    return {op.qubits().begin(), op.qubits().end()};
  }

  /// One candidate-resampling step: draws the new bitstring for a single
  /// trajectory.
  Bitstring update_bits(const State& state, Bitstring b, const Operation& op,
                        Rng& rng) {
    const auto support = support_of(op);
    const CandidateList candidates = expand_candidates(b, support);
    std::array<double, (1u << kMaxGateArity)> weights{};
    for (int i = 0; i < candidates.count; ++i) {
      weights[static_cast<std::size_t>(i)] =
          compute_probability_(state, candidates.values[static_cast<std::size_t>(i)]);
    }
    stats_.probability_evaluations +=
        static_cast<std::size_t>(candidates.count);
    const std::size_t chosen = rng.categorical(
        {weights.data(), static_cast<std::size_t>(candidates.count)});
    return candidates.values[chosen];
  }

  /// Dictionary-batched sampling (Sec. 3.2.3): evolves one state and
  /// resamples the dictionary after each gate. The per-gate step lives
  /// in resample_dictionary() so the engine's snapshot-sharing path can
  /// drive the identical arithmetic per shard.
  Counts sample_parallel(const Circuit& circuit, std::uint64_t repetitions,
                         Rng& rng) {
    stats_.used_sample_parallelization = true;
    stats_.trajectories = 1;
    State state = initial_state_;
    BatchDictionary dictionary{{Bitstring{0}, repetitions}};
    stats_.max_dictionary_size = 1;

    for (const auto& op : circuit.all_operations()) {
      if (op.gate().is_measurement()) continue;
      options_.cancel_token.throw_if_stopped();
      fault::throw_if_fails("shard_run");
      apply_op_(op, state, rng);
      ++stats_.state_applications;
      if (options_.skip_diagonal_updates && op.gate().is_diagonal()) {
        ++stats_.diagonal_updates_skipped;
        continue;
      }
      stats_.probability_evaluations +=
          resample_dictionary(state, op, dictionary, rng);
      stats_.max_dictionary_size =
          std::max(stats_.max_dictionary_size, dictionary.size());
    }
    return {dictionary.begin(), dictionary.end()};
  }

  /// Exact channel handling: sample (Kraus branch, candidate) jointly —
  /// this is BGLS on the channel's unitary dilation with the environment
  /// bit discarded, so the hidden-variable invariant holds exactly.
  template <typename S = State>
  Bitstring apply_channel_jointly(const Operation& op, S& state, Bitstring b,
                                  Rng& rng)
    requires requires(S s, const Matrix& m, std::span<const Qubit> qs) {
      s.apply_matrix(m, qs);
      s.renormalize();
    }
  {
    const auto& kraus = op.gate().channel().operators();
    const auto support = support_of(op);
    const CandidateList candidates = expand_candidates(b, support);
    const auto num_candidates = static_cast<std::size_t>(candidates.count);

    std::vector<S> branches;
    branches.reserve(kraus.size());
    std::vector<double> weights;
    weights.reserve(kraus.size() * num_candidates);
    for (const auto& k : kraus) {
      S branch = state;
      branch.apply_matrix(k, op.qubits());
      for (std::size_t i = 0; i < num_candidates; ++i) {
        weights.push_back(compute_probability_(branch, candidates.values[i]));
      }
      branches.push_back(std::move(branch));
    }
    stats_.probability_evaluations += weights.size();
    const std::size_t chosen = rng.categorical(weights);
    state = std::move(branches[chosen / num_candidates]);
    state.renormalize();
    ++stats_.state_applications;
    return candidates.values[chosen % num_candidates];
  }

  /// Emits one single-shard RunCheckpoint through the checkpoint sink
  /// (the serial paths; see core/checkpoint.h). stats_ at the call
  /// covers the whole completed prefix — a resumed run seeds it from
  /// the base checkpoint — so the snapshot's counters are prefix-exact.
  void emit_serial_checkpoint(CheckpointMode mode, std::uint64_t repetitions,
                              std::uint64_t done,
                              const std::array<std::uint64_t, 4>& rng_state,
                              std::map<std::string, Counts> histograms) {
    RunCheckpoint checkpoint;
    checkpoint.mode = mode;
    checkpoint.total_repetitions = repetitions;
    ShardCheckpoint shard;
    shard.total = repetitions;
    shard.completed = done;
    shard.rng_state = rng_state;
    shard.histograms = std::move(histograms);
    checkpoint.shards.push_back(std::move(shard));
    checkpoint.stats = checkpoint_stats_from(stats_);
    options_.checkpoint.sink(checkpoint);
  }

  /// Emits the final ProgressUpdate carrying the run's complete
  /// histograms (the degenerate stream of the batched path and of
  /// 0-repetition runs).
  void emit_final_progress(const Result& result, std::uint64_t repetitions) {
    ProgressUpdate update;
    update.completed_repetitions = repetitions;
    update.total_repetitions = repetitions;
    update.final = true;
    update.histograms = key_histograms(result);
    options_.progress.sink(update);
  }

  /// One full trajectory; returns the final bitstring and (optionally)
  /// appends measurement records.
  Bitstring run_one_trajectory(const Circuit& circuit, Rng& rng,
                               Result* result) {
    State state = initial_state_;
    Bitstring b = 0;
    // Per-trajectory classical record, read by classically-controlled
    // operations (feed-forward).
    std::map<std::string, Bitstring> records;
    ++stats_.trajectories;
    for (const auto& op : circuit.all_operations()) {
      options_.cancel_token.throw_if_stopped();
      const Gate& gate = op.gate();
      if (gate.is_measurement()) {
        // b is a faithful sample of the instantaneous distribution, so
        // its restriction to the measured qubits *is* the outcome;
        // collapse the state to stay consistent with it.
        const Bitstring packed = pack_key_bits(b, op.qubits());
        records[gate.measurement_key()] = packed;
        if (result != nullptr) {
          result->add_record(gate.measurement_key(), packed);
        }
        project_state(state, op.qubits(), b);
        continue;
      }
      if (op.is_classically_controlled()) {
        const auto it = records.find(op.condition_key());
        BGLS_REQUIRE(it != records.end(), "operation ", op.to_string(),
                     " is conditioned on key '", op.condition_key(),
                     "' which has not been measured yet");
        if (it->second == 0) continue;  // condition false: skip the gate
      }
      if (gate.is_channel() && hooks_are_native_) {
        if constexpr (requires(State s, const Matrix& m,
                               std::span<const Qubit> qs) {
                        s.apply_matrix(m, qs);
                        s.renormalize();
                      }) {
          b = apply_channel_jointly(op, state, b, rng);
          continue;
        }
      }
      apply_op_(op, state, rng);
      ++stats_.state_applications;
      if (options_.skip_diagonal_updates && gate.is_unitary() &&
          gate.is_diagonal()) {
        ++stats_.diagonal_updates_skipped;
        continue;
      }
      b = update_bits(state, b, op, rng);
    }
    return b;
  }

  void project_state(State& state, std::span<const Qubit> qubits,
                     Bitstring b) {
    if constexpr (requires(State s, std::span<const Qubit> qs, Bitstring bb) {
                    s.project(qs, bb);
                  }) {
      state.project(qubits, b);
    } else {
      detail::throw_error<UnsupportedOperationError>(
          "state type does not support projection; mid-circuit "
          "measurements need a project(qubits, bits) member");
    }
  }

  State initial_state_;
  SimulatorOptions options_;
  ApplyOpFn apply_op_;
  ProbabilityFn compute_probability_;
  bool hooks_are_native_ = true;
  RunStats stats_;
  /// Lazily acquired shared engine context (pool). Copying the
  /// simulator copies the pointer, so copies share one pool.
  std::shared_ptr<EngineContext> engine_context_;
};

}  // namespace bgls

// The engine templates need the full Simulator definition above, and
// Simulator::run/sample instantiate BatchEngine when num_threads != 1 —
// pulling the engine in here keeps "include core/simulator.h" a
// complete, self-sufficient way to get the parallel paths too.
#include "engine/engine.h"  // IWYU pragma: keep

namespace bgls {

// Out of line: needs the complete BatchEngine/EngineContext definitions.
template <typename State>
BatchEngine<State> Simulator<State>::make_engine() {
  if (!options_.reuse_thread_pool) {
    return BatchEngine<State>(*this);
  }
  const int resolved = ThreadPool::resolve_num_threads(options_.num_threads);
  if (!engine_context_ || engine_context_->num_threads() != resolved) {
    engine_context_ = EngineContext::shared(resolved);
  }
  return BatchEngine<State>(*this, engine_context_);
}

template <typename State>
std::future<Result> Simulator<State>::run_async(Circuit circuit,
                                                std::uint64_t repetitions,
                                                std::uint64_t seed) {
  // The job always schedules on the immortal shared pool (a private
  // pool could be torn down by its own worker once the job holds the
  // last reference), and *inside* the job a plain copy of this
  // simulator runs synchronously — same path choice, same draws as
  // run(circuit, repetitions, seed). The copy is forced onto the shared
  // pool too: reuse_thread_pool = false would otherwise spawn and join
  // a private pool inside every job — exactly the per-call cost async
  // exists to avoid, oversubscribing the machine under many in-flight
  // jobs. Pool choice is scheduling-only, so the forced reuse never
  // changes the sampled records. A multi-threaded inner run fans its
  // shards out on this same pool; nested parallel_for is safe (see
  // thread_pool.h).
  const int resolved = ThreadPool::resolve_num_threads(options_.num_threads);
  std::shared_ptr<EngineContext> context = EngineContext::shared(resolved);
  Simulator<State> copy = *this;
  copy.options_.reuse_thread_pool = true;
  auto task = std::make_shared<std::packaged_task<Result()>>(
      [sim = std::move(copy), circuit = std::move(circuit), repetitions,
       seed]() mutable { return sim.run(circuit, repetitions, seed); });
  std::future<Result> future = task->get_future();
  context->pool().submit([task] { (*task)(); });
  return future;
}

}  // namespace bgls

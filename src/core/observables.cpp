#include "core/observables.h"

#include <bit>

#include "util/error.h"

namespace bgls {

PauliZString::PauliZString(std::vector<int> qubits)
    : qubits_(std::move(qubits)) {
  for (const int q : qubits_) {
    BGLS_REQUIRE(q >= 0 && q < kMaxQubits, "qubit ", q, " out of range");
    const Bitstring bit = Bitstring{1} << q;
    BGLS_REQUIRE((mask_ & bit) == 0, "duplicate qubit ", q,
                 " in Pauli-Z string");
    mask_ |= bit;
  }
}

int PauliZString::eigenvalue(Bitstring b) const {
  return (std::popcount(b & mask_) & 1) ? -1 : 1;
}

void DiagonalObservable::add_term(double coefficient,
                                  std::vector<int> qubits) {
  terms_.push_back({coefficient, PauliZString(std::move(qubits))});
}

double DiagonalObservable::eigenvalue(Bitstring b) const {
  double value = constant_;
  for (const auto& term : terms_) {
    value += term.coefficient * term.pauli.eigenvalue(b);
  }
  return value;
}

double DiagonalObservable::expectation(const Counts& counts) const {
  double total = 0.0;
  std::uint64_t samples = 0;
  for (const auto& [bits, count] : counts) {
    total += eigenvalue(bits) * static_cast<double>(count);
    samples += count;
  }
  BGLS_REQUIRE(samples > 0, "no samples to estimate from");
  return total / static_cast<double>(samples);
}

double DiagonalObservable::expectation(const Distribution& distribution) const {
  double total = 0.0;
  for (const auto& [bits, p] : distribution) total += eigenvalue(bits) * p;
  return total;
}

DiagonalObservable DiagonalObservable::max_cut(
    const std::vector<std::pair<int, int>>& edges) {
  DiagonalObservable h;
  for (const auto& [u, v] : edges) {
    h.add_constant(0.5);
    h.add_term(-0.5, {u, v});
  }
  return h;
}

}  // namespace bgls

#include "core/checkpoint.h"

#include <algorithm>
#include <optional>
#include <sstream>
#include <string>

#include "core/result.h"
#include "core/simulator.h"
#include "util/error.h"
#include "util/json_parser.h"
#include "util/json_writer.h"
#include "util/parse.h"

namespace bgls {

CheckpointStats checkpoint_stats_from(const RunStats& stats) {
  CheckpointStats out;
  out.state_applications = stats.state_applications;
  out.probability_evaluations = stats.probability_evaluations;
  out.max_dictionary_size = stats.max_dictionary_size;
  out.trajectories = stats.trajectories;
  out.diagonal_updates_skipped = stats.diagonal_updates_skipped;
  return out;
}

void apply_checkpoint_stats(RunStats& stats, const CheckpointStats& prefix) {
  stats.state_applications += prefix.state_applications;
  stats.probability_evaluations += prefix.probability_evaluations;
  stats.max_dictionary_size = std::max<std::size_t>(
      stats.max_dictionary_size, prefix.max_dictionary_size);
  stats.trajectories += prefix.trajectories;
  stats.diagonal_updates_skipped += prefix.diagonal_updates_skipped;
}

void add_checkpoint_stats(CheckpointStats& into, const CheckpointStats& delta) {
  into.state_applications += delta.state_applications;
  into.probability_evaluations += delta.probability_evaluations;
  into.max_dictionary_size =
      std::max(into.max_dictionary_size, delta.max_dictionary_size);
  into.trajectories += delta.trajectories;
  into.diagonal_updates_skipped += delta.diagonal_updates_skipped;
}

std::string_view checkpoint_mode_name(CheckpointMode mode) {
  switch (mode) {
    case CheckpointMode::kSerial: return "serial";
    case CheckpointMode::kSerialBatched: return "serial_batched";
    case CheckpointMode::kEngine: return "engine";
    case CheckpointMode::kEngineBatched: return "engine_batched";
  }
  return "?";
}

CheckpointMode parse_checkpoint_mode(std::string_view name) {
  if (name == "serial") return CheckpointMode::kSerial;
  if (name == "serial_batched") return CheckpointMode::kSerialBatched;
  if (name == "engine") return CheckpointMode::kEngine;
  if (name == "engine_batched") return CheckpointMode::kEngineBatched;
  detail::throw_error<ParseError>("unknown checkpoint mode '", name, "'");
}

std::uint64_t RunCheckpoint::completed_repetitions() const {
  std::uint64_t done = 0;
  for (const ShardCheckpoint& shard : shards) done += shard.completed;
  return done;
}

bool RunCheckpoint::complete() const {
  for (const ShardCheckpoint& shard : shards) {
    if (shard.completed != shard.total) return false;
  }
  return true;
}

std::string RunCheckpoint::to_json() const {
  std::ostringstream out;
  JsonWriter json(out, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("version").value(version);
  json.key("mode").value(checkpoint_mode_name(mode));
  json.key("total").value(total_repetitions);
  json.key("stats").begin_object();
  json.key("state_applications").value(stats.state_applications);
  json.key("probability_evaluations").value(stats.probability_evaluations);
  json.key("max_dictionary_size").value(stats.max_dictionary_size);
  json.key("trajectories").value(stats.trajectories);
  json.key("diagonal_updates_skipped").value(stats.diagonal_updates_skipped);
  json.end_object();
  json.key("shards").begin_array();
  for (const ShardCheckpoint& shard : shards) {
    json.begin_object();
    json.key("total").value(shard.total);
    json.key("completed").value(shard.completed);
    json.key("rng").begin_array();
    for (const std::uint64_t word : shard.rng_state) json.value(word);
    json.end_array();
    json.key("histograms").begin_object();
    for (const auto& [key, counts] : shard.histograms) {
      json.key(key).begin_object();
      for (const auto& [bits, count] : counts) {
        json.key(std::to_string(bits)).value(count);
      }
      json.end_object();
    }
    json.end_object();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return out.str();
}

namespace {

CheckpointStats stats_from_json(const JsonValue& value) {
  CheckpointStats stats;
  stats.state_applications = value.u64_or("state_applications", 0);
  stats.probability_evaluations = value.u64_or("probability_evaluations", 0);
  stats.max_dictionary_size = value.u64_or("max_dictionary_size", 0);
  stats.trajectories = value.u64_or("trajectories", 0);
  stats.diagonal_updates_skipped = value.u64_or("diagonal_updates_skipped", 0);
  return stats;
}

std::uint64_t parse_u64_key(const std::string& text) {
  // Checked parse (util/parse.h): std::stoull would throw raw
  // std::invalid_argument/std::out_of_range — not a bgls error type —
  // on a corrupt checkpoint, and accept a leading '-' by wrapping.
  const std::optional<std::uint64_t> parsed = util::try_parse_u64(text);
  BGLS_REQUIRE(parsed.has_value(), "malformed histogram key '", text, "'");
  return *parsed;
}

}  // namespace

RunCheckpoint RunCheckpoint::from_json(const JsonValue& value) {
  BGLS_REQUIRE(value.kind() == JsonValue::Kind::kObject,
               "checkpoint JSON must be an object");
  RunCheckpoint checkpoint;
  checkpoint.version = static_cast<int>(value.u64_or("version", 1));
  const JsonValue* mode = value.find("mode");
  BGLS_REQUIRE(mode != nullptr, "checkpoint JSON missing 'mode'");
  checkpoint.mode = parse_checkpoint_mode(mode->as_string());
  checkpoint.total_repetitions = value.u64_or("total", 0);
  const JsonValue* stats = value.find("stats");
  if (stats != nullptr) checkpoint.stats = stats_from_json(*stats);
  const JsonValue* shards = value.find("shards");
  BGLS_REQUIRE(shards != nullptr, "checkpoint JSON missing 'shards'");
  for (const JsonValue& entry : shards->items()) {
    ShardCheckpoint shard;
    shard.total = entry.u64_or("total", 0);
    shard.completed = entry.u64_or("completed", 0);
    BGLS_REQUIRE(shard.completed <= shard.total,
                 "checkpoint shard completed > total");
    const JsonValue* rng = entry.find("rng");
    BGLS_REQUIRE(rng != nullptr && rng->items().size() == 4,
                 "checkpoint shard needs a 4-word rng state");
    for (std::size_t i = 0; i < 4; ++i) {
      shard.rng_state[i] = rng->items()[i].as_u64();
    }
    if (const JsonValue* histograms = entry.find("histograms")) {
      for (const auto& [key, counts] : histograms->members()) {
        Counts& into = shard.histograms[key];
        for (const auto& [bits, count] : counts.members()) {
          into[parse_u64_key(bits)] = count.as_u64();
        }
      }
    }
    checkpoint.shards.push_back(std::move(shard));
  }
  return checkpoint;
}

RunCheckpoint RunCheckpoint::parse(std::string_view text) {
  return from_json(JsonValue::parse(text));
}

void validate_resume(const RunCheckpoint& checkpoint, CheckpointMode mode,
                     std::uint64_t total_repetitions, std::size_t shards) {
  BGLS_REQUIRE(checkpoint.mode == mode,
               "checkpoint was produced by the '",
               checkpoint_mode_name(checkpoint.mode),
               "' sampling path but this run takes '",
               checkpoint_mode_name(mode),
               "'; resume with the same thread/batching configuration");
  BGLS_REQUIRE(checkpoint.total_repetitions == total_repetitions,
               "checkpoint covers ", checkpoint.total_repetitions,
               " repetitions but the run asks for ", total_repetitions);
  BGLS_REQUIRE(checkpoint.shards.size() == shards,
               "checkpoint has ", checkpoint.shards.size(),
               " shards but the run decomposes into ", shards,
               "; resume with the same num_rng_streams");
  for (const ShardCheckpoint& shard : checkpoint.shards) {
    BGLS_REQUIRE(shard.completed <= shard.total,
                 "checkpoint shard completed > total");
  }
}

void restore_result_histograms(
    Result& result, const std::map<std::string, Counts>& histograms) {
  for (const auto& [key, counts] : histograms) {
    for (const auto& [value, count] : counts) {
      result.add_records(key, value, count);
    }
  }
}

CheckpointCollector::CheckpointCollector(CheckpointOptions options,
                                         RunCheckpoint base)
    : options_(std::move(options)),
      current_(std::move(base)),
      base_stats_(current_.stats),
      deltas_(current_.shards.size()) {}

void CheckpointCollector::record(std::size_t shard, std::uint64_t completed,
                                 const std::array<std::uint64_t, 4>& rng_state,
                                 const std::map<std::string, Counts>& cumulative,
                                 const CheckpointStats& delta) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ShardCheckpoint& slot = current_.shards.at(shard);
  slot.completed = completed;
  slot.rng_state = rng_state;
  slot.histograms = cumulative;
  deltas_.at(shard) = delta;
  CheckpointStats stats = base_stats_;
  for (const CheckpointStats& d : deltas_) add_checkpoint_stats(stats, d);
  current_.stats = stats;
  if (options_.sink) options_.sink(current_);
}

void CheckpointCollector::emit() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (options_.sink) options_.sink(current_);
}

RunCheckpoint CheckpointCollector::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

}  // namespace bgls

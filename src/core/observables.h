/// \file observables.h
/// Diagonal (Z-basis) observable estimation from sampled bitstrings.
///
/// Weak simulation only yields samples, so any quantity consumed
/// downstream must be estimated from them. Z-diagonal observables —
/// Pauli-Z strings and weighted sums of them (Ising cost functions, the
/// QAOA MaxCut Hamiltonian of Sec. 4.4) — are estimable directly from
/// computational-basis counts, which is exactly what the paper's QAOA
/// example does when it "maximizes average energy" over sampled
/// bitstrings.

#pragma once

#include <initializer_list>
#include <vector>

#include "util/bits.h"
#include "util/stats.h"

namespace bgls {

/// A product of Pauli-Z operators on a subset of qubits, ⊗_{q∈S} Z_q.
/// Its eigenvalue on |b⟩ is (-1)^{parity of b over S}.
class PauliZString {
 public:
  /// Builds Z on the listed qubits (empty = identity).
  explicit PauliZString(std::vector<int> qubits);

  [[nodiscard]] const std::vector<int>& qubits() const { return qubits_; }

  /// Eigenvalue (+1/-1) on a basis state.
  [[nodiscard]] int eigenvalue(Bitstring b) const;

 private:
  std::vector<int> qubits_;
  Bitstring mask_ = 0;
};

/// A real-weighted sum of Pauli-Z strings: H = Σ_k c_k · Z-string_k
/// (+ constant). Diagonal, so its expectation is estimable from Z-basis
/// samples.
class DiagonalObservable {
 public:
  DiagonalObservable() = default;

  /// Adds a term c · ⊗_{q∈qubits} Z_q.
  void add_term(double coefficient, std::vector<int> qubits);

  /// Adds a constant offset.
  void add_constant(double value) { constant_ += value; }

  /// Eigenvalue on a basis state.
  [[nodiscard]] double eigenvalue(Bitstring b) const;

  /// Monte-Carlo estimate ⟨H⟩ from sampled counts.
  [[nodiscard]] double expectation(const Counts& counts) const;

  /// Exact expectation from a full distribution.
  [[nodiscard]] double expectation(const Distribution& distribution) const;

  /// The MaxCut cost observable Σ_edges (1 - Z_u Z_v)/2: its eigenvalue
  /// on a partition bitstring is the cut value.
  [[nodiscard]] static DiagonalObservable max_cut(
      const std::vector<std::pair<int, int>>& edges);

 private:
  struct Term {
    double coefficient;
    PauliZString pauli;
  };
  std::vector<Term> terms_;
  double constant_ = 0.0;
};

}  // namespace bgls

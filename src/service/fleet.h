/// \file fleet.h
/// FleetDaemon — a load-balancing front for N `bgls_serve` workers.
///
/// One fleet process listens on a single endpoint and speaks the exact
/// client protocol (service/protocol.h); behind it, each worker is an
/// independent bgls_serve daemon with its own scheduler, journal, and
/// telemetry. Horizontal scale without a shared-state control plane:
///
///  - `submit` is routed to the live, undrained worker with the fewest
///    in-flight fleet jobs (ties broken round-robin). The worker's job
///    id is mapped to a fleet-global id, so clients see one id space
///    regardless of placement. Determinism makes placement invisible:
///    the same submission returns a byte-identical report from every
///    worker.
///  - Job-addressed ops (`status`/`cancel`/`result`/`wait`/`stream`)
///    are proxied to the owning worker with the ids translated both
///    ways. Ops for jobs on a dead worker fail with the retryable
///    `worker_down` slug.
///  - `stats` aggregates every live worker's counters (summed, with
///    per-backend/per-tenant maps merged); `fleet` (a fleet-only op)
///    reports per-worker health/draining/in-flight.
///  - `drain`/`undrain` (fleet-only, {"worker":N}) stop/resume routing
///    *new* submissions to a worker; in-flight jobs keep being proxied,
///    so a drained worker can finish its work and be restarted without
///    failing clients.
///  - A health thread pings each worker's `stats` endpoint; a worker
///    that stops answering is marked dead (skipped for placement, its
///    jobs answer `worker_down`) and rejoins automatically when it
///    answers again.
///
/// `shutdown` stops the fleet front only — workers have their own
/// lifecycles (that is what draining is for).

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"
#include "service/socket.h"
#include "util/json_parser.h"

namespace bgls::service {

/// Construction knobs for the fleet front.
struct FleetOptions {
  /// Where the fleet listens (the clients' single endpoint).
  Endpoint endpoint;
  /// The worker daemons' endpoints (at least one).
  std::vector<Endpoint> workers;
  /// Cadence of the health thread's per-worker stats pings.
  std::chrono::milliseconds health_interval{500};
  /// Request lines slower than this emit a structured warn log line
  /// (obs/log.h) with the op and the job's trace id when known. 0
  /// disables. Wait/stream ops include the proxied follow time.
  std::uint64_t slow_request_ms = 0;
};

/// The fleet process: acceptor + per-connection proxy handlers + health
/// checker (see file comment).
class FleetDaemon {
 public:
  explicit FleetDaemon(FleetOptions options);

  /// stop()s if still running.
  ~FleetDaemon();

  FleetDaemon(const FleetDaemon&) = delete;
  FleetDaemon& operator=(const FleetDaemon&) = delete;

  /// Binds the endpoint and starts accepting + health checks. Throws
  /// IoError on bind failures.
  void start();

  /// Stops accepting, disconnects every client, joins all threads.
  /// Idempotent.
  void stop();

  /// Blocks until a client sent `shutdown` (or stop()/
  /// request_shutdown() ran).
  void wait_for_shutdown();

  /// Makes wait_for_shutdown() return (signal handlers).
  void request_shutdown();

  /// The bound endpoint (TCP: with the resolved ephemeral port).
  [[nodiscard]] const Endpoint& endpoint() const {
    return server_.endpoint();
  }

  /// Point-in-time per-worker view (the `fleet` op's payload).
  struct WorkerStatus {
    Endpoint endpoint;
    bool alive = true;
    bool draining = false;
    /// Fleet jobs currently placed on the worker and not yet observed
    /// terminal.
    std::uint64_t in_flight = 0;
    /// Total submissions routed to the worker.
    std::uint64_t placed = 0;
  };
  [[nodiscard]] std::vector<WorkerStatus> workers() const;

 private:
  /// Shared per-worker state. alive/draining are owned by the health
  /// thread / drain ops; counters by the placement path.
  struct Worker {
    Endpoint endpoint;
    std::atomic<bool> alive{true};
    std::atomic<bool> draining{false};
    std::atomic<std::uint64_t> in_flight{0};
    std::atomic<std::uint64_t> placed{0};
  };

  /// Where a fleet-global job id lives.
  struct Route {
    std::size_t worker = 0;
    std::uint64_t remote_id = 0;
    /// Set once a terminal response was proxied (drops in_flight).
    bool finished = false;
    /// The fleet side of the job's distributed trace: fleet.place /
    /// fleet.proxy spans, stitched with the worker's spans by the
    /// `trace` op. Null when telemetry is compiled out.
    std::shared_ptr<obs::Trace> trace;
  };

  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  /// A connection handler's lazily opened sockets to workers (one
  /// proxy connection per (client connection, worker)).
  class WorkerLink;

  void accept_loop();
  void handle_connection(Connection& connection);
  void handle_line(const std::string& line, Socket& socket,
                   std::vector<std::unique_ptr<Socket>>& links);
  void handle_submit(const JsonValue& message, const std::string& line,
                     Socket& socket,
                     std::vector<std::unique_ptr<Socket>>& links);
  void handle_job_op(const JsonValue& message, Socket& socket,
                     std::vector<std::unique_ptr<Socket>>& links);
  void handle_stats(Socket& socket,
                    std::vector<std::unique_ptr<Socket>>& links);
  /// Fleet-wide Prometheus scrape: every live worker's exposition with
  /// a worker="N" label injected into each series, plus the fleet's
  /// own registry — one scrape sees the whole fleet.
  void handle_metrics(Socket& socket,
                      std::vector<std::unique_ptr<Socket>>& links);
  /// The merged span tree: the route's fleet spans stitched with the
  /// owning worker's spans under one trace id.
  void handle_trace(const JsonValue& message, Socket& socket,
                    std::vector<std::unique_ptr<Socket>>& links);
  /// Tails the fleet front's own structured-log ring.
  void handle_logs(const JsonValue& message, Socket& socket);
  void handle_fleet(Socket& socket);
  void handle_drain(const JsonValue& message, Socket& socket, bool drain);
  void health_loop();
  /// The handler's socket to `worker`, connected on first use. Throws
  /// IoError when the worker cannot be reached (marks it dead).
  Socket& link(std::vector<std::unique_ptr<Socket>>& links,
               std::size_t worker);
  /// Least-loaded live undrained worker, or npos.
  [[nodiscard]] std::size_t pick_worker_locked() const;
  /// Marks a terminal proxied response against the route's in_flight
  /// and, on the first terminal frame, records the route's fleet.proxy
  /// span with `proxy_seconds` (time spent proxying the op that
  /// observed the terminal state).
  void note_finished(std::uint64_t global_id, const JsonValue& response,
                     double proxy_seconds);
  void reap_connections();

  FleetOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  ServerSocket server_;
  std::thread acceptor_;
  std::thread health_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  mutable std::mutex routes_mutex_;
  std::map<std::uint64_t, Route> routes_;
  std::uint64_t next_global_id_ = 1;
  /// Round-robin cursor for placement ties.
  std::size_t placement_cursor_ = 0;

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace bgls::service

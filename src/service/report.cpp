#include "service/report.h"

#include <sstream>

#include "util/bits.h"
#include "util/json_writer.h"

namespace bgls::service {

RunReportContext report_context(const RunRequest& request, int num_qubits) {
  RunReportContext context;
  context.repetitions = request.repetitions;
  context.seed = request.seed;
  context.rng_streams = request.num_rng_streams;
  context.optimized = request.optimize_circuit;
  context.num_qubits = num_qubits;
  return context;
}

void write_run_report(std::ostream& os, const RunReportContext& context,
                      const RunResult& result) {
  JsonWriter json(os);
  json.begin_object();
  json.key("tool").value("bgls_run");
  json.key("backend").value(result.backend_name);
  json.key("selection_reason").value(result.selection_reason);
  json.key("num_qubits").value(context.num_qubits);
  json.key("repetitions").value(context.repetitions);
  json.key("seed").value(context.seed);
  json.key("rng_streams").value(context.rng_streams);
  json.key("optimized").value(context.optimized);

  json.key("measurements").begin_array();
  for (const std::string& key : result.measurements.keys()) {
    json.begin_object();
    json.key("key").value(key);
    const auto& qubits = result.measurements.measured_qubits(key);
    json.key("qubits").begin_array();
    for (const Qubit q : qubits) json.value(q);
    json.end_array();
    json.key("histogram").begin_array();
    for (const auto& [bits, count] : result.measurements.histogram(key)) {
      json.begin_object();
      // Library convention (util/bits.h to_string, print_histogram):
      // the key's qubit 0 prints first.
      json.key("bits").value(to_string(bits, static_cast<int>(qubits.size())));
      json.key("value").value(bits);
      json.key("count").value(count);
      json.end_object();
    }
    json.end_array();
    json.end_object();
  }
  json.end_array();

  // Scheduling-independent counters only: the report must be
  // byte-identical across thread counts for a fixed seed.
  json.key("stats").begin_object();
  json.key("state_applications").value(result.stats.state_applications);
  json.key("probability_evaluations")
      .value(result.stats.probability_evaluations);
  json.key("max_dictionary_size").value(result.stats.max_dictionary_size);
  json.key("trajectories").value(result.stats.trajectories);
  json.key("sample_parallelization")
      .value(result.stats.used_sample_parallelization);
  json.end_object();

  json.end_object();
  os << "\n";
}

std::string run_report_string(const RunReportContext& context,
                              const RunResult& result) {
  std::ostringstream os;
  write_run_report(os, context, result);
  return os.str();
}

}  // namespace bgls::service

/// \file daemon.h
/// ServiceDaemon — the long-lived sampling service process behind
/// `bgls_serve` (tools/): a JobScheduler fronted by an ndjson socket
/// protocol (service/protocol.h) over a Unix-domain or TCP endpoint.
///
/// One thread accepts connections; each connection gets a handler
/// thread processing request lines until the peer disconnects (clients
/// may pipeline many requests over one connection — submit, poll other
/// jobs, stream, cancel). The daemon is embeddable: tests and
/// examples/service_client.cpp start one in-process with start()/stop()
/// and drive it through ServiceClient over a real socket, which is
/// exactly the code path the standalone binary runs.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/journal.h"
#include "service/report.h"
#include "service/scheduler.h"
#include "service/socket.h"
#include "util/json_parser.h"

namespace bgls::service {

/// Construction knobs for the daemon.
struct DaemonOptions {
  /// Where to listen (unix:/path or tcp:host:port; tcp port 0 picks an
  /// ephemeral port, readable from endpoint() after start()).
  Endpoint endpoint;
  /// Scheduler sizing (runner threads, queue depth).
  SchedulerOptions scheduler{};
  /// Write-ahead journal path (service/journal.h); empty = no journal.
  /// start() replays it (answering queries for journaled terminal jobs
  /// from memory, re-enqueueing incomplete jobs from their last
  /// checkpoint), compacts it, then appends every subsequent
  /// submit/terminal/checkpoint/evict event fsync-before-ack.
  std::string journal_path;
  /// Request lines slower than this emit a structured warn log line
  /// (obs/log.h) carrying the op and, when resolvable, the job's trace
  /// id. 0 disables. Wait/stream ops include time spent following the
  /// job, so thresholds below the typical job runtime flag every wait.
  std::uint64_t slow_request_ms = 0;
};

/// The service process: scheduler + acceptor + per-connection handlers.
class ServiceDaemon {
 public:
  explicit ServiceDaemon(DaemonOptions options);

  /// stop()s if still running.
  ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  /// Binds the endpoint and starts accepting. Throws IoError on bind
  /// failures.
  void start();

  /// Stops accepting, disconnects every client, and joins all handler
  /// threads. Jobs already submitted keep their state (the scheduler
  /// lives until destruction). Idempotent.
  void stop();

  /// Blocks until a client sent the `shutdown` op (or stop() ran).
  /// The bgls_serve main loop: start(); wait_for_shutdown(); stop().
  void wait_for_shutdown();

  /// Makes wait_for_shutdown() return — the graceful-exit trigger for
  /// signal handlers (bgls_serve's SIGTERM/SIGINT watcher).
  void request_shutdown();

  /// The bound endpoint (TCP: with the resolved ephemeral port).
  [[nodiscard]] const Endpoint& endpoint() const {
    return server_.endpoint();
  }

  [[nodiscard]] JobScheduler& scheduler() { return scheduler_; }

 private:
  struct Connection {
    Socket socket;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Connection& connection);
  /// Dispatches one request line. Responses (and stream progress
  /// lines) are written to the connection socket directly.
  void handle_line(const std::string& line, Socket& socket);

  void handle_submit(const JsonValue& message, const std::string& line,
                     Socket& socket);
  void handle_status(const JsonValue& message, Socket& socket);
  void handle_cancel(const JsonValue& message, Socket& socket);
  void handle_result_or_wait(const JsonValue& message, Socket& socket,
                             bool wait);
  void handle_stream(const JsonValue& message, Socket& socket);
  void handle_stats(Socket& socket);
  /// Prometheus text exposition of the process-wide telemetry registry,
  /// embedded as the "metrics" string field of the response line.
  void handle_metrics(Socket& socket);
  /// The job's span tree ({"trace_id":...,"spans":[...]}); a fleet
  /// front stitches these worker spans with its own placement spans.
  void handle_trace(const JsonValue& message, Socket& socket);
  /// Tails the structured-log ring with level/trace filters.
  void handle_logs(const JsonValue& message, Socket& socket);

  /// Sends the terminal-state response for a job ("result" shape: the
  /// canonical report on kDone, an error code otherwise). `type` tags
  /// stream frames ("result") and is omitted when empty.
  void send_result(const JobInfo& info, Socket& socket,
                   const std::string& type);

  /// Joins and drops finished connections (called from the acceptor).
  void reap_connections();

  [[nodiscard]] std::uint64_t job_field(const JsonValue& message) const;

  /// Terminal job restored from the journal at start() — answers
  /// status/result/wait/stream for its id without re-running.
  struct ReplayedResult {
    JobState state = JobState::kDone;
    std::string error;
    std::string backend;
    std::string selection_reason;
    std::string report;
  };

  /// Installs the journal event hooks on options_.scheduler (must run
  /// before scheduler_ is constructed — see the member order below).
  [[nodiscard]] SchedulerOptions& hooked_scheduler_options();
  /// Replays + compacts the journal, opens it for appending, and
  /// re-enqueues incomplete jobs (called from start()).
  void replay_journal();
  /// Answers a request for a journal-replayed terminal job; false when
  /// the id is not one.
  bool send_replayed(std::uint64_t id, Socket& socket,
                     const std::string& type);
  bool find_replayed(std::uint64_t id, ReplayedResult& out) const;
  void journal_terminal(const JobInfo& info);

  DaemonOptions options_;
  /// Declared before scheduler_ so it outlives it: scheduler runner
  /// threads append through the hooks until ~JobScheduler joins them.
  Journal journal_;
  JobScheduler scheduler_;
  ServerSocket server_;
  std::thread acceptor_;
  bool started_ = false;
  std::atomic<bool> stopping_{false};

  std::mutex connections_mutex_;
  std::vector<std::unique_ptr<Connection>> connections_;

  /// Report contexts per job (the submit knobs echoed into the
  /// canonical report), kept daemon-side so `result` can rebuild the
  /// byte-exact bgls_run output.
  mutable std::mutex contexts_mutex_;
  std::map<std::uint64_t, RunReportContext> contexts_;

  /// Journal-replayed terminal jobs (start() fills it; read-mostly).
  mutable std::mutex replayed_mutex_;
  std::map<std::uint64_t, ReplayedResult> replayed_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
};

}  // namespace bgls::service

#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>

#include "obs/metrics.h"
#include "util/fault.h"
#include "util/parse.h"

namespace bgls::service {

namespace {

/// Journal series: process-wide, shared by every Journal handle (the
/// daemon owns one; tests may open several).
struct JournalMetrics {
  obs::Counter records;
  obs::Histogram replay_seconds;

  JournalMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    records = registry.counter(
        "bgls_journal_records_total",
        "Records durably appended to the scheduler journal");
    replay_seconds = registry.histogram(
        "bgls_journal_replay_seconds",
        "Journal replay wall time at daemon startup");
  }

  static JournalMetrics& instance() {
    static JournalMetrics metrics;
    return metrics;
  }
};

const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) != 0 ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

/// Frames one record body as a journal line (no trailing newline).
std::string frame_record(const std::string& body) {
  std::string line = "{\"crc\":";
  line += std::to_string(Journal::crc32(body));
  line += ",\"rec\":";
  line += body;
  line += "}";
  return line;
}

/// Retries ::write through EINTR until everything is out; returns false
/// on a write error (errno set).
bool write_fully(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::uint32_t Journal::crc32(std::string_view text) {
  const auto& table = crc32_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : text) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

Journal::~Journal() { close(); }

void Journal::open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    detail::throw_error<JournalError>("journal already open at '", path_, "'");
  }
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    detail::throw_error<JournalError>("cannot open journal '", path,
                              "': ", std::strerror(errno));
  }
  fd_ = fd;
  path_ = path;
  // If a previous process died mid-append the file may end without a
  // newline; start our first record on a fresh line just in case. An
  // extra blank line is harmless (replay skips empty lines).
  needs_newline_ = true;
}

void Journal::append(const std::string& record_json) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) {
    detail::throw_error<JournalError>("journal append on a closed journal");
  }
  std::string line;
  if (needs_newline_) line += '\n';
  line += frame_record(record_json);
  line += '\n';

  if (fault::should_fail("journal_write")) {
    // Simulate a crash mid-write: a prefix of the line reaches the
    // file, nothing is fsync'd, and the caller sees a failure. The
    // next append opens with a newline so the torn fragment stays on
    // its own (CRC-invalid) line.
    const std::size_t torn = line.size() / 2;
    (void)write_fully(fd_, line.data(), torn);
    needs_newline_ = true;
    detail::throw_error<JournalError>("injected fault at 'journal_write' tore the "
                              "journal append (BGLS_FAULT_INJECT)");
  }

  if (!write_fully(fd_, line.data(), line.size())) {
    // Unknown how much hit the disk — force the next record onto a
    // fresh line.
    needs_newline_ = true;
    detail::throw_error<JournalError>("journal write to '", path_,
                              "' failed: ", std::strerror(errno));
  }
#if defined(__APPLE__)
  if (::fsync(fd_) != 0) {
#else
  if (::fdatasync(fd_) != 0) {
#endif
    detail::throw_error<JournalError>("journal fsync of '", path_,
                              "' failed: ", std::strerror(errno));
  }
  needs_newline_ = false;
  ++records_written_;
  JournalMetrics::instance().records.add();
}

void Journal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) (void)::fsync(fd_);
}

void Journal::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    (void)::fsync(fd_);
    (void)::close(fd_);
    fd_ = -1;
  }
}

std::uint64_t Journal::records_written() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_written_;
}

std::vector<JsonValue> Journal::replay_file(const std::string& path,
                                            std::size_t* skipped) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (skipped != nullptr) *skipped = 0;
    return {};  // no journal yet: empty history
  }
  std::vector<JsonValue> records = replay_stream(in, skipped);
  if (in.bad()) {
    detail::throw_error<JournalError>("error reading journal '", path, "'");
  }
  return records;
}

std::vector<JsonValue> Journal::replay_stream(std::istream& in,
                                              std::size_t* skipped) {
  if (skipped != nullptr) *skipped = 0;
  std::vector<JsonValue> records;

  // The frame layout is fixed (we write every line), so the body is
  // recovered as the raw substring between `,"rec":` and the final `}`
  // and checksummed byte-for-byte — no re-serialization, so the CRC
  // check is exact.
  static constexpr std::string_view kCrcPrefix = "{\"crc\":";
  static constexpr std::string_view kRecKey = ",\"rec\":";

  std::string line;
  while (std::getline(in, line)) {
    // Tolerate CR (file shuttled through a text-mode transfer).
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    const auto skip = [&] {
      if (skipped != nullptr) ++*skipped;
    };
    if (line.size() < kCrcPrefix.size() + kRecKey.size() + 2 ||
        line.compare(0, kCrcPrefix.size(), kCrcPrefix) != 0 ||
        line.back() != '}') {
      skip();  // torn tail, torn middle, or foreign content
      continue;
    }
    const std::size_t rec_at = line.find(kRecKey, kCrcPrefix.size());
    if (rec_at == std::string::npos) {
      skip();
      continue;
    }
    // Checked parse (util/parse.h) of the digits between the prefix
    // and `,"rec":` — full consumption required, and anything that
    // does not fit a real CRC32 is corrupt by definition (the old
    // strtoull path truncated oversized values before comparing).
    const std::optional<std::uint64_t> crc = util::try_parse_u64(
        std::string_view(line).substr(kCrcPrefix.size(),
                                      rec_at - kCrcPrefix.size()));
    if (!crc.has_value() || *crc > 0xFFFFFFFFull) {
      skip();
      continue;
    }
    const std::string_view body(line.data() + rec_at + kRecKey.size(),
                                line.size() - rec_at - kRecKey.size() - 1);
    if (crc32(body) != static_cast<std::uint32_t>(*crc)) {
      skip();
      continue;
    }
    try {
      records.push_back(JsonValue::parse(body));
    } catch (const Error&) {
      // CRC-valid but unparseable should not happen; treat as corrupt.
      skip();
    }
  }
  return records;
}

void Journal::compact_file(const std::string& path,
                           const std::vector<std::string>& record_bodies) {
  const std::string tmp = path + ".compact.tmp";
  {
    const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) {
      detail::throw_error<JournalError>("cannot open journal compaction file '", tmp,
                                "': ", std::strerror(errno));
    }
    std::string contents;
    for (const std::string& body : record_bodies) {
      contents += frame_record(body);
      contents += '\n';
    }
    const bool ok = write_fully(fd, contents.data(), contents.size()) &&
                    ::fsync(fd) == 0;
    (void)::close(fd);
    if (!ok) {
      (void)::unlink(tmp.c_str());
      detail::throw_error<JournalError>("journal compaction write to '", tmp,
                                "' failed: ", std::strerror(errno));
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    detail::throw_error<JournalError>("journal compaction rename to '", path,
                              "' failed: ", std::strerror(errno));
  }
}

void record_journal_replay_seconds(double seconds) {
  JournalMetrics::instance().replay_seconds.observe(seconds);
}

}  // namespace bgls::service

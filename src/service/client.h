/// \file client.h
/// ServiceClient — a thin typed wrapper over the bgls service protocol
/// (service/protocol.h), used by the `bgls_client` CLI, the service
/// example, and the end-to-end tests. One client owns one connection;
/// requests are synchronous (send a line, read the response line).
/// Not thread-safe: use one client per thread (connections are cheap).

#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "service/protocol.h"
#include "service/socket.h"
#include "util/json_parser.h"

namespace bgls::service {

/// Thrown when the server answered with ok=false; carries the protocol
/// error code ("cancelled", "timeout", "queue_full", ...).
class ServiceError : public Error {
 public:
  ServiceError(std::string code, const std::string& message)
      : Error(message), code_(std::move(code)) {}

  [[nodiscard]] const std::string& code() const { return code_; }

 private:
  std::string code_;
};

/// Synchronous protocol client (see file comment).
class ServiceClient {
 public:
  /// Connects immediately; throws IoError on failure.
  explicit ServiceClient(const Endpoint& endpoint);

  /// Sends one raw request line and returns the parsed response
  /// (ok=true or ok=false alike). Throws IoError on transport errors.
  JsonValue roundtrip(const std::string& line);

  /// roundtrip() without the parse: the response line verbatim (no
  /// trailing newline). Drives server-specific ops the typed API does
  /// not cover (the fleet front's `fleet`/`drain`/`undrain`).
  std::string roundtrip_text(const std::string& line);

  /// Submits a job; returns its id. Throws ServiceError on rejection.
  std::uint64_t submit(const SubmitArgs& args);

  /// One status snapshot ({"state": ..., "completed": ..., ...}).
  JsonValue status(std::uint64_t job);

  /// Blocks server-side until the job is terminal (or timeout_ms
  /// passed; 0 = no timeout) and returns the raw response.
  JsonValue wait(std::uint64_t job, std::uint64_t timeout_ms = 0);

  /// The canonical bgls_run report of a finished job — byte-identical
  /// to the CLI output for the same input/seed. Throws ServiceError
  /// with code "cancelled"/"timeout"/"failed"/"not_done" otherwise.
  std::string result_report(std::uint64_t job);

  /// Like result_report but waits for completion first.
  std::string wait_report(std::uint64_t job, std::uint64_t timeout_ms = 0);

  /// Requests cancellation; true when the job was still cancellable.
  bool cancel(std::uint64_t job);

  /// Streams the job: `on_progress` fires per progress frame; returns
  /// the final report on success, throws ServiceError otherwise.
  std::string stream(std::uint64_t job,
                     const std::function<void(const JsonValue&)>& on_progress);

  /// The scheduler's aggregate counters.
  JsonValue stats();

  /// Prometheus text exposition of the server's telemetry registry
  /// (kernel/engine/scheduler/daemon series). When the server was built
  /// with -DBGLS_ENABLE_TELEMETRY=OFF the text is a single marker
  /// comment line.
  std::string metrics_text();

  /// The job's span tree (the `trace` op): a response carrying
  /// "trace_id" and a "spans" array — parse with parse_spans(). Against
  /// a fleet front this is the merged fleet+worker tree.
  JsonValue trace(std::uint64_t job);

  /// Tails the server's structured-log ring (the `logs` op): response
  /// carries "lines", an array of ndjson strings. `level` filters
  /// ("debug"/"info"/"warn"/"error"), trace_id nonzero filters to one
  /// trace, limit caps the tail length (0 = server default of 100).
  JsonValue logs(const std::string& level = "debug",
                 std::uint64_t trace_id = 0, std::uint64_t limit = 0);

  /// Asks the daemon to shut down (it still answers ok first).
  void shutdown_server();

 private:
  /// Throws ServiceError when `response` has ok=false.
  static void require_ok(const JsonValue& response);
  /// Extracts the "report" field of a terminal response (or throws the
  /// mapped ServiceError).
  static std::string extract_report(const JsonValue& response);

  Socket socket_;
};

}  // namespace bgls::service

#include "service/fleet.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "util/json_writer.h"

namespace bgls::service {
namespace {

/// Fleet series: placement, proxying, and health transitions.
struct FleetMetrics {
  obs::Counter forwarded;
  obs::Counter worker_down;
  obs::Counter health_failures;
  obs::Gauge live_workers;

  FleetMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    forwarded = registry.counter("bgls_fleet_forwarded_total",
                                 "Requests proxied to a worker");
    worker_down = registry.counter(
        "bgls_fleet_worker_down_total",
        "Requests answered with the worker_down slug");
    health_failures = registry.counter(
        "bgls_fleet_health_failures_total",
        "Health pings that found a worker unresponsive");
    live_workers =
        registry.gauge("bgls_fleet_live_workers", "Workers currently alive");
  }

  static FleetMetrics& instance() {
    static FleetMetrics metrics;
    return metrics;
  }
};

template <typename Fill>
std::string response_line(bool ok, Fill fill) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("ok").value(ok);
  fill(json);
  json.end_object();
  os << "\n";
  return os.str();
}

std::string error_line(const std::string& code, const std::string& message) {
  return response_line(false, [&](JsonWriter& json) {
    json.key("code").value(code);
    json.key("error").value(message);
  });
}

/// Re-emits a parsed JSON value (the proxy rewrites ids inside
/// otherwise-opaque worker messages).
void write_value(JsonWriter& json, const JsonValue& value) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull: json.null(); return;
    case JsonValue::Kind::kBool: json.value(value.as_bool()); return;
    case JsonValue::Kind::kNumber:
      // Exact u64 round-trip when the token was a plain unsigned
      // integer (job ids, seeds); double otherwise.
      try {
        json.value(value.as_u64());
      } catch (const ValueError&) {
        json.value(value.as_double());
      }
      return;
    case JsonValue::Kind::kString: json.value(value.as_string()); return;
    case JsonValue::Kind::kArray:
      json.begin_array();
      for (const JsonValue& item : value.items()) write_value(json, item);
      json.end_array();
      return;
    case JsonValue::Kind::kObject:
      json.begin_object();
      for (const auto& [key, member] : value.members()) {
        json.key(key);
        write_value(json, member);
      }
      json.end_object();
      return;
  }
}

/// One message line with its "job" member (if any) replaced by `job`.
std::string with_job_id(const JsonValue& message, std::uint64_t job) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  bool wrote_job = false;
  for (const auto& [key, member] : message.members()) {
    json.key(key);
    if (key == "job") {
      json.value(job);
      wrote_job = true;
    } else {
      write_value(json, member);
    }
  }
  if (!wrote_job) json.key("job").value(job);
  json.end_object();
  os << "\n";
  return os.str();
}

/// One submit line with its trace context rewritten: the fleet's trace
/// id, and the fleet.place span as the worker's parent — the worker's
/// queue/run spans then stitch under the fleet's placement span.
std::string with_trace_context(const JsonValue& message,
                               std::uint64_t trace_id,
                               std::uint64_t parent_span_id) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  for (const auto& [key, member] : message.members()) {
    if (key == "trace_id" || key == "parent_span_id") continue;
    json.key(key);
    write_value(json, member);
  }
  json.key("trace_id").value(trace_id);
  json.key("parent_span_id").value(parent_span_id);
  json.end_object();
  os << "\n";
  return os.str();
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Injects worker="N" into one Prometheus series line:
///   name{a="b"} v  →  name{worker="N",a="b"} v
///   name v         →  name{worker="N"} v
std::string with_worker_label(const std::string& line, std::size_t worker) {
  const std::string label = "worker=\"" + std::to_string(worker) + "\"";
  const std::size_t brace = line.find('{');
  const std::size_t space = line.find(' ');
  if (brace != std::string::npos &&
      (space == std::string::npos || brace < space)) {
    const bool empty_set = brace + 1 < line.size() && line[brace + 1] == '}';
    return line.substr(0, brace + 1) + label + (empty_set ? "" : ",") +
           line.substr(brace + 1);
  }
  if (space == std::string::npos) return line;  // malformed; pass through
  return line.substr(0, space) + "{" + label + "}" + line.substr(space);
}

/// True for final (non-progress) frames carrying a terminal job state.
bool is_terminal_frame(const JsonValue& frame) {
  const std::string state = frame.string_or("state", "");
  return state == "done" || state == "failed" || state == "cancelled" ||
         state == "timeout";
}

}  // namespace

FleetDaemon::FleetDaemon(FleetOptions options) : options_(std::move(options)) {
  BGLS_REQUIRE(!options_.workers.empty(),
               "a fleet needs at least one --worker endpoint");
  workers_.reserve(options_.workers.size());
  for (const Endpoint& endpoint : options_.workers) {
    auto worker = std::make_unique<Worker>();
    worker->endpoint = endpoint;
    workers_.push_back(std::move(worker));
  }
}

FleetDaemon::~FleetDaemon() { stop(); }

void FleetDaemon::start() {
  server_.listen_on(options_.endpoint);
  started_ = true;
  FleetMetrics::instance().live_workers.set(
      static_cast<std::int64_t>(workers_.size()));
  acceptor_ = std::thread([this] { accept_loop(); });
  health_ = std::thread([this] { health_loop(); });
}

void FleetDaemon::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  server_.close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();  // also wakes the health thread's sleep
  if (health_.joinable()) health_.join();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    for (auto& connection : connections_) connection->socket.shutdown_both();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  started_ = false;
}

void FleetDaemon::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void FleetDaemon::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

std::vector<FleetDaemon::WorkerStatus> FleetDaemon::workers() const {
  std::vector<WorkerStatus> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    WorkerStatus status;
    status.endpoint = worker->endpoint;
    status.alive = worker->alive.load(std::memory_order_acquire);
    status.draining = worker->draining.load(std::memory_order_acquire);
    status.in_flight = worker->in_flight.load(std::memory_order_acquire);
    status.placed = worker->placed.load(std::memory_order_acquire);
    out.push_back(std::move(status));
  }
  return out;
}

void FleetDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket = server_.accept();
    if (!socket.valid()) break;  // close()d
    reap_connections();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { handle_connection(*raw); });
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void FleetDaemon::reap_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void FleetDaemon::handle_connection(Connection& connection) {
  // One proxy socket per worker per client connection, opened on first
  // use: blocking ops (wait/stream) held by one client never stall
  // another client's traffic to the same worker.
  std::vector<std::unique_ptr<Socket>> links(workers_.size());
  std::string line;
  try {
    while (connection.socket.read_line(line)) {
      if (line.empty()) continue;
      handle_line(line, connection.socket, links);
    }
  } catch (const IoError&) {
    // Peer vanished mid-request/response — normal client churn.
  }
  connection.done.store(true, std::memory_order_release);
}

Socket& FleetDaemon::link(std::vector<std::unique_ptr<Socket>>& links,
                          std::size_t worker) {
  if (links[worker] == nullptr || !links[worker]->valid()) {
    try {
      links[worker] =
          std::make_unique<Socket>(connect_to(workers_[worker]->endpoint));
    } catch (const IoError&) {
      workers_[worker]->alive.store(false, std::memory_order_release);
      throw;
    }
  }
  return *links[worker];
}

std::size_t FleetDaemon::pick_worker_locked() const {
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  std::size_t best = kNone;
  std::uint64_t best_load = 0;
  // Scan from the round-robin cursor so equal loads rotate placement.
  for (std::size_t offset = 0; offset < workers_.size(); ++offset) {
    const std::size_t i = (placement_cursor_ + offset) % workers_.size();
    const Worker& worker = *workers_[i];
    if (!worker.alive.load(std::memory_order_acquire)) continue;
    if (worker.draining.load(std::memory_order_acquire)) continue;
    const std::uint64_t load = worker.in_flight.load(std::memory_order_acquire);
    if (best == kNone || load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

void FleetDaemon::handle_line(const std::string& line, Socket& socket,
                              std::vector<std::unique_ptr<Socket>>& links) {
  JsonValue message;
  try {
    message = JsonValue::parse(line);
  } catch (const ParseError& e) {
    socket.write_all(error_line("parse_error", e.what()));
    return;
  }
  const std::string op = message.string_or("op", "");
  const auto request_start = std::chrono::steady_clock::now();
  try {
    if (op == "submit") {
      handle_submit(message, line, socket, links);
    } else if (op == "status" || op == "cancel" || op == "result" ||
               op == "wait" || op == "stream") {
      handle_job_op(message, socket, links);
    } else if (op == "stats") {
      handle_stats(socket, links);
    } else if (op == "metrics") {
      handle_metrics(socket, links);
    } else if (op == "trace") {
      handle_trace(message, socket, links);
    } else if (op == "logs") {
      handle_logs(message, socket);
    } else if (op == "fleet") {
      handle_fleet(socket);
    } else if (op == "drain" || op == "undrain") {
      handle_drain(message, socket, op == "drain");
    } else if (op == "shutdown") {
      socket.write_all(response_line(true, [](JsonWriter&) {}));
      request_shutdown();
    } else {
      socket.write_all(error_line("unknown_op", "unknown op '" + op + "'"));
    }
  } catch (const IoError&) {
    throw;  // client-side transport failure: let the handler loop exit
  } catch (const std::exception& e) {
    socket.write_all(error_line("bad_request", e.what()));
  }
  const double request_seconds = seconds_since(request_start);
  if (options_.slow_request_ms > 0 &&
      request_seconds * 1000.0 >=
          static_cast<double>(options_.slow_request_ms)) {
    const std::uint64_t job_id = message.u64_or("job", 0);
    std::uint64_t trace_id = message.u64_or("trace_id", 0);
    if (trace_id == 0 && job_id != 0) {
      const std::lock_guard<std::mutex> lock(routes_mutex_);
      const auto it = routes_.find(job_id);
      if (it != routes_.end() && it->second.trace != nullptr) {
        trace_id = it->second.trace->id();
      }
    }
    obs::log(obs::LogLevel::kWarn, "fleet", "slow request",
             {{"op", op}, {"ms", request_seconds * 1000.0}}, trace_id, job_id);
  }
}

void FleetDaemon::handle_submit(const JsonValue& message,
                                const std::string& line, Socket& socket,
                                std::vector<std::unique_ptr<Socket>>& links) {
  // Placement + id allocation under one lock so concurrent submits
  // spread out; the proxying itself runs unlocked. The global id is
  // allocated *before* the worker answers so it can double as the
  // distributed trace id when the client did not mint one.
  std::size_t target;
  std::uint64_t global_id = 0;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    target = pick_worker_locked();
    placement_cursor_ = (placement_cursor_ + 1) % workers_.size();
    if (target != std::numeric_limits<std::size_t>::max()) {
      global_id = next_global_id_++;
    }
  }
  if (target == std::numeric_limits<std::size_t>::max()) {
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down", "no live undrained worker to place the job on"));
    return;
  }

  // The fleet's side of the distributed trace. The forwarded line gets
  // the (possibly fleet-minted) trace id and the fleet.place span as
  // parent_span_id; the worker's queue/run spans stitch under it. A
  // client-supplied parent_span_id becomes fleet.place's own parent.
  std::shared_ptr<obs::Trace> trace;
  std::string forward = line + "\n";
  if constexpr (obs::kTelemetryCompiled) {
    const std::uint64_t client_trace = message.u64_or("trace_id", 0);
    const std::uint64_t client_parent = message.u64_or("parent_span_id", 0);
    const std::uint64_t trace_id =
        client_trace != 0 ? client_trace : global_id;
    trace = std::make_shared<obs::Trace>(trace_id, client_parent);
    forward = with_trace_context(
        message, trace_id, obs::Trace::span_id(trace_id, "fleet.place", 0));
  }

  const auto place_start = std::chrono::steady_clock::now();
  std::string response_text;
  try {
    Socket& worker = link(links, target);
    worker.write_all(forward);
    if (!worker.read_line(response_text)) {
      detail::throw_error<IoError>("worker closed the connection");
    }
  } catch (const IoError& e) {
    workers_[target]->alive.store(false, std::memory_order_release);
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down",
        "worker " + workers_[target]->endpoint.to_string() +
            " failed mid-submit (" + e.what() + "); retry"));
    return;
  }
  FleetMetrics::instance().forwarded.add();
  const JsonValue response = JsonValue::parse(response_text);
  if (!response.bool_or("ok", false) || response.find("job") == nullptr) {
    // Worker-side rejection (queue_full, tenant_quota, over_budget...):
    // forwarded verbatim — the slugs are the protocol's.
    socket.write_all(response_text + "\n");
    return;
  }
  const bool born_terminal = is_terminal_frame(response);
  if (trace != nullptr && obs::enabled()) {
    trace->record({obs::Trace::span_id(trace->id(), "fleet.place", 0),
                   trace->parent(), "fleet.place", 0,
                   seconds_since(place_start)});
    if (born_terminal) {
      // The submit ack itself delivered the terminal state (cache hit,
      // or the job outran the ack) — there will be no later proxied
      // terminal frame, so record the job's one fleet.proxy span here.
      // Structure stays deterministic: every placed job's tree carries
      // fleet.place + fleet.proxy however the timing race lands.
      trace->record({obs::Trace::span_id(trace->id(), "fleet.proxy", 0),
                     trace->parent(), "fleet.proxy", 0, 0.0});
    }
  }
  const std::uint64_t remote_id = response.u64_or("job", 0);
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    Route route;
    route.worker = target;
    route.remote_id = remote_id;
    // Born-terminal jobs never count as in-flight.
    route.finished = born_terminal;
    route.trace = std::move(trace);
    if (!route.finished) {
      workers_[target]->in_flight.fetch_add(1, std::memory_order_acq_rel);
    }
    routes_[global_id] = std::move(route);
  }
  workers_[target]->placed.fetch_add(1, std::memory_order_acq_rel);
  socket.write_all(with_job_id(response, global_id));
}

void FleetDaemon::note_finished(std::uint64_t global_id,
                                const JsonValue& response,
                                double proxy_seconds) {
  if (!is_terminal_frame(response)) return;
  std::shared_ptr<obs::Trace> trace;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(global_id);
    if (it == routes_.end() || it->second.finished) return;
    it->second.finished = true;
    trace = it->second.trace;
    auto& in_flight = workers_[it->second.worker]->in_flight;
    std::uint64_t current = in_flight.load(std::memory_order_acquire);
    while (current > 0 &&
           !in_flight.compare_exchange_weak(current, current - 1,
                                            std::memory_order_acq_rel)) {
    }
  }
  // Exactly one fleet.proxy span per job — recorded at the first
  // terminal frame, whatever op observed it — so the merged tree is
  // deterministic however many times the client polled.
  if (trace != nullptr && obs::enabled()) {
    trace->record({obs::Trace::span_id(trace->id(), "fleet.proxy", 0),
                   trace->parent(), "fleet.proxy", 0, proxy_seconds});
  }
}

void FleetDaemon::handle_job_op(const JsonValue& message, Socket& socket,
                                std::vector<std::unique_ptr<Socket>>& links) {
  const JsonValue* job = message.find("job");
  BGLS_REQUIRE(job != nullptr, "request needs a 'job' field");
  const std::uint64_t global_id = job->as_u64();
  Route route;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(global_id);
    if (it == routes_.end()) {
      socket.write_all(
          error_line("unknown_job", "unknown fleet job id " +
                                        std::to_string(global_id)));
      return;
    }
    route = it->second;
  }
  if (!workers_[route.worker]->alive.load(std::memory_order_acquire)) {
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down", "job " + std::to_string(global_id) + " lives on " +
                           workers_[route.worker]->endpoint.to_string() +
                           ", which is down"));
    return;
  }
  try {
    const auto proxy_start = std::chrono::steady_clock::now();
    Socket& worker = link(links, route.worker);
    worker.write_all(with_job_id(message, route.remote_id));
    // stream answers with any number of progress frames before the
    // final response; every other op answers exactly one line. A
    // non-progress frame ends both shapes.
    std::string frame_text;
    while (worker.read_line(frame_text)) {
      const JsonValue frame = JsonValue::parse(frame_text);
      note_finished(global_id, frame, seconds_since(proxy_start));
      socket.write_all(with_job_id(frame, global_id));
      if (frame.string_or("type", "") != "progress") return;
    }
    detail::throw_error<IoError>("worker closed the connection");
  } catch (const IoError& e) {
    workers_[route.worker]->alive.store(false, std::memory_order_release);
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down", "worker " +
                           workers_[route.worker]->endpoint.to_string() +
                           " failed mid-request (" + e.what() + ")"));
  }
}

void FleetDaemon::handle_stats(Socket& socket,
                               std::vector<std::unique_ptr<Socket>>& links) {
  // Sum every live worker's counters; the per-backend / per-tenant
  // maps merge by key. Dead workers contribute nothing (their counts
  // come back when they do).
  std::map<std::string, std::uint64_t> totals;
  std::map<std::string, std::map<std::string, std::uint64_t>> maps;
  std::size_t reachable = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    if (!workers_[i]->alive.load(std::memory_order_acquire)) continue;
    std::string response_text;
    try {
      Socket& worker = link(links, i);
      worker.write_all(op_request_line("stats"));
      if (!worker.read_line(response_text)) continue;
    } catch (const IoError&) {
      workers_[i]->alive.store(false, std::memory_order_release);
      continue;
    }
    const JsonValue response = JsonValue::parse(response_text);
    if (!response.bool_or("ok", false)) continue;
    ++reachable;
    for (const auto& [key, value] : response.members()) {
      if (key == "ok") continue;
      if (value.kind() == JsonValue::Kind::kNumber) {
        totals[key] += value.as_u64();
      } else if (value.kind() == JsonValue::Kind::kObject) {
        for (const auto& [inner, count] : value.members()) {
          maps[key][inner] += count.as_u64();
        }
      }
    }
  }
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("workers").value(static_cast<std::uint64_t>(workers_.size()));
    json.key("workers_reachable").value(
        static_cast<std::uint64_t>(reachable));
    for (const auto& [key, value] : totals) json.key(key).value(value);
    for (const auto& [key, value] : maps) {
      json.key(key).begin_object();
      for (const auto& [inner, count] : value) json.key(inner).value(count);
      json.end_object();
    }
  }));
}

void FleetDaemon::handle_metrics(Socket& socket,
                                 std::vector<std::unique_ptr<Socket>>& links) {
  std::string text;
  if constexpr (obs::kTelemetryCompiled) {
    // The fleet's own series first (no worker label — they describe
    // the front), then each live worker's scrape with worker="N"
    // injected into every series line. HELP/TYPE headers repeat per
    // family name; keep the first and drop duplicates so the merged
    // exposition stays valid.
    text = obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
    std::set<std::string> seen_headers;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      if (!workers_[i]->alive.load(std::memory_order_acquire)) continue;
      std::string response_text;
      try {
        Socket& worker = link(links, i);
        worker.write_all(op_request_line("metrics"));
        if (!worker.read_line(response_text)) continue;
      } catch (const IoError&) {
        workers_[i]->alive.store(false, std::memory_order_release);
        continue;
      }
      const JsonValue response = JsonValue::parse(response_text);
      if (!response.bool_or("ok", false)) continue;
      const std::string scrape = response.string_or("metrics", "");
      std::size_t start = 0;
      while (start < scrape.size()) {
        const std::size_t end = scrape.find('\n', start);
        const std::string line =
            scrape.substr(start, end == std::string::npos ? std::string::npos
                                                          : end - start);
        start = end == std::string::npos ? scrape.size() : end + 1;
        if (line.empty()) continue;
        if (line[0] == '#') {
          // "# HELP name ..." / "# TYPE name ..." — keyed per line
          // text minus the worker-independent suffix is fine: the
          // whole line is identical across workers.
          if (seen_headers.insert(line).second) text += line + "\n";
          continue;
        }
        text += with_worker_label(line, i) + "\n";
      }
    }
  } else {
    // Marker comment only, matching the workers' own compiled-out
    // exposition.
    text = obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  }
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("metrics").value(text);
  }));
}

void FleetDaemon::handle_trace(const JsonValue& message, Socket& socket,
                               std::vector<std::unique_ptr<Socket>>& links) {
  const JsonValue* job = message.find("job");
  BGLS_REQUIRE(job != nullptr, "request needs a 'job' field");
  const std::uint64_t global_id = job->as_u64();
  Route route;
  {
    const std::lock_guard<std::mutex> lock(routes_mutex_);
    const auto it = routes_.find(global_id);
    if (it == routes_.end()) {
      socket.write_all(error_line(
          "unknown_job", "unknown fleet job id " + std::to_string(global_id)));
      return;
    }
    route = it->second;
  }
  if (!workers_[route.worker]->alive.load(std::memory_order_acquire)) {
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down", "job " + std::to_string(global_id) + " lives on " +
                           workers_[route.worker]->endpoint.to_string() +
                           ", which is down"));
    return;
  }
  std::string response_text;
  try {
    Socket& worker = link(links, route.worker);
    worker.write_all(job_request_line("trace", route.remote_id));
    if (!worker.read_line(response_text)) {
      detail::throw_error<IoError>("worker closed the connection");
    }
  } catch (const IoError& e) {
    workers_[route.worker]->alive.store(false, std::memory_order_release);
    FleetMetrics::instance().worker_down.add();
    socket.write_all(error_line(
        "worker_down", "worker " +
                           workers_[route.worker]->endpoint.to_string() +
                           " failed mid-request (" + e.what() + ")"));
    return;
  }
  const JsonValue response = JsonValue::parse(response_text);
  if (!response.bool_or("ok", false)) {
    socket.write_all(with_job_id(response, global_id));
    return;
  }
  // Stitch: worker spans + the route's fleet spans, one tree under one
  // trace id, re-sorted into the canonical (name, index, id) order so
  // the merged view is byte-stable.
  std::vector<obs::SpanRecord> spans = parse_spans(response);
  std::uint64_t trace_id = response.u64_or("trace_id", 0);
  if (route.trace != nullptr) {
    trace_id = route.trace->id();
    const std::vector<obs::SpanRecord> fleet_spans = route.trace->spans();
    spans.insert(spans.end(), fleet_spans.begin(), fleet_spans.end());
  }
  std::sort(spans.begin(), spans.end(),
            [](const obs::SpanRecord& a, const obs::SpanRecord& b) {
              return std::tie(a.name, a.index, a.id) <
                     std::tie(b.name, b.index, b.id);
            });
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("job").value(global_id);
    json.key("trace_id").value(trace_id);
    json.key("spans");
    write_spans(json, spans);
  }));
}

void FleetDaemon::handle_logs(const JsonValue& message, Socket& socket) {
  const std::string level_name = message.string_or("level", "debug");
  obs::LogLevel min_level = obs::LogLevel::kDebug;
  BGLS_REQUIRE(obs::parse_log_level(level_name, &min_level),
               "unknown log level '", level_name,
               "' (expected debug/info/warn/error)");
  const std::uint64_t trace_id = message.u64_or("trace_id", 0);
  const std::uint64_t limit = message.u64_or("limit", 100);
  const std::vector<obs::LogRecord> records = obs::Logger::global().tail(
      static_cast<std::size_t>(limit), min_level, trace_id);
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("count").value(static_cast<std::uint64_t>(records.size()));
    json.key("lines").begin_array();
    for (const obs::LogRecord& record : records) {
      json.value(obs::format_log_line(record));
    }
    json.end_array();
  }));
}

void FleetDaemon::handle_fleet(Socket& socket) {
  const std::vector<WorkerStatus> status = workers();
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("workers").begin_array();
    for (std::size_t i = 0; i < status.size(); ++i) {
      json.begin_object();
      json.key("worker").value(static_cast<std::uint64_t>(i));
      json.key("endpoint").value(status[i].endpoint.to_string());
      json.key("alive").value(status[i].alive);
      json.key("draining").value(status[i].draining);
      json.key("in_flight").value(status[i].in_flight);
      json.key("placed").value(status[i].placed);
      json.end_object();
    }
    json.end_array();
  }));
}

void FleetDaemon::handle_drain(const JsonValue& message, Socket& socket,
                               bool drain) {
  const JsonValue* worker = message.find("worker");
  BGLS_REQUIRE(worker != nullptr, "drain/undrain needs a 'worker' index");
  const std::uint64_t index = worker->as_u64();
  BGLS_REQUIRE(index < workers_.size(), "worker index ", index,
               " out of range (", workers_.size(), " workers)");
  workers_[index]->draining.store(drain, std::memory_order_release);
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("worker").value(index);
    json.key("draining").value(drain);
  }));
}

void FleetDaemon::health_loop() {
  while (true) {
    {
      // The interruptible sleep: shutdown wakes it immediately.
      std::unique_lock<std::mutex> lock(shutdown_mutex_);
      if (shutdown_cv_.wait_for(lock, options_.health_interval,
                                [&] { return shutdown_requested_; })) {
        return;
      }
    }
    std::int64_t live = 0;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      Worker& worker = *workers_[i];
      // A fresh connection per ping: the handlers' links are not
      // thread-safe, and a ping must not queue behind a blocking op.
      bool healthy = false;
      try {
        Socket socket = connect_to(worker.endpoint);
        socket.write_all(op_request_line("stats"));
        std::string response;
        healthy = socket.read_line(response) &&
                  JsonValue::parse(response).bool_or("ok", false);
      } catch (const std::exception&) {
        healthy = false;
      }
      if (!healthy) FleetMetrics::instance().health_failures.add();
      const bool was_alive =
          worker.alive.exchange(healthy, std::memory_order_acq_rel);
      if (healthy) {
        ++live;
        if (!was_alive) {
          obs::log(obs::LogLevel::kInfo, "fleet", "worker rejoined",
                   {{"worker", static_cast<std::uint64_t>(i)},
                    {"endpoint", worker.endpoint.to_string()}});
        }
      } else if (was_alive) {
        // Lost jobs stay routed here; their ops answer worker_down
        // until the worker comes back (journal replay restores them).
        obs::log(obs::LogLevel::kWarn, "fleet", "worker down",
                 {{"worker", static_cast<std::uint64_t>(i)},
                  {"endpoint", worker.endpoint.to_string()}});
      }
    }
    FleetMetrics::instance().live_workers.set(live);
  }
}

}  // namespace bgls::service

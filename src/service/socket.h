/// \file socket.h
/// Minimal POSIX stream-socket wrappers for the service layer: the
/// `bgls_serve` daemon and `bgls_client` speak newline-delimited JSON
/// over a Unix-domain or TCP socket, and all they need from the OS is
/// listen/accept/connect plus buffered line IO. No external dependency;
/// Linux/POSIX only (the daemon is gated out of non-UNIX builds in
/// CMake).
///
/// Blocking accept() is made interruptible with a self-pipe: close()
/// wakes the poll() so a serving thread can be shut down promptly —
/// the daemon's stop path relies on it.

#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/error.h"

namespace bgls::service {

/// Thrown on socket-level failures (connect refused, write on a closed
/// peer, bind errors, ...).
class IoError : public Error {
 public:
  using Error::Error;
};

/// Where a server listens / a client connects: a Unix-domain socket
/// path or a TCP host:port.
struct Endpoint {
  std::string unix_path;  ///< non-empty = Unix-domain
  std::string host;       ///< TCP peer/bind address (empty = loopback)
  int port = 0;           ///< TCP port (0 = ephemeral when listening)

  [[nodiscard]] bool is_unix() const { return !unix_path.empty(); }

  [[nodiscard]] static Endpoint unix_socket(std::string path);
  [[nodiscard]] static Endpoint tcp(std::string host, int port);

  /// Parses "unix:/path/to.sock", "tcp:host:port", or "tcp::port"
  /// (loopback). Throws ValueError on anything else.
  [[nodiscard]] static Endpoint parse(const std::string& spec);

  /// The parseable spec string ("unix:..." / "tcp:host:port").
  [[nodiscard]] std::string to_string() const;
};

/// A connected stream socket with buffered line reads. Move-only;
/// closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes all of `data` (SIGPIPE-safe); throws IoError on failure.
  void write_all(std::string_view data);

  /// Reads up to the next '\n' (consumed, not included) into `line`.
  /// Returns false on clean EOF with no buffered data; throws IoError
  /// on read failures.
  bool read_line(std::string& line);

  /// Shuts down both directions (unblocks a peer's blocking read).
  void shutdown_both() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received beyond the last returned line
};

/// A listening socket whose blocking accept() can be interrupted from
/// another thread by close(). Lifecycle contract: close() only
/// *signals* (accept returns an invalid Socket); the file descriptors
/// are released by the destructor, which must run after the accepting
/// thread has been joined — the daemon's stop path does exactly that.
class ServerSocket {
 public:
  ServerSocket() = default;
  ~ServerSocket();

  ServerSocket(const ServerSocket&) = delete;
  ServerSocket& operator=(const ServerSocket&) = delete;

  /// Binds and listens on `endpoint`. Unix paths: a stale socket file
  /// is unlinked first. TCP port 0 picks an ephemeral port (read it
  /// back from endpoint()). Throws IoError; at most once per instance.
  void listen_on(const Endpoint& endpoint);

  /// Blocks until a client connects (returns the connection) or the
  /// server is close()d (returns an invalid Socket).
  [[nodiscard]] Socket accept();

  /// Unblocks accept() permanently. Idempotent, thread-safe.
  void close() noexcept;

  [[nodiscard]] bool listening() const {
    return fd_ >= 0 && !closed_.load(std::memory_order_acquire);
  }

  /// The endpoint actually bound (TCP: with the resolved port).
  [[nodiscard]] const Endpoint& endpoint() const { return endpoint_; }

 private:
  int fd_ = -1;
  int wake_read_ = -1;   ///< self-pipe: poll()ed alongside the listen fd
  int wake_write_ = -1;  ///< written by close() to interrupt accept()
  std::atomic<bool> closed_{false};
  Endpoint endpoint_;
};

/// Connects to a listening endpoint; throws IoError on failure.
[[nodiscard]] Socket connect_to(const Endpoint& endpoint);

}  // namespace bgls::service

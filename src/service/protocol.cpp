#include "service/protocol.h"

#include <limits>
#include <sstream>

#include "qasm/qasm.h"
#include "util/error.h"

namespace bgls::service {
namespace {

/// A negative-friendly integer field ("priority" may be negative; JSON
/// numbers parse as doubles there). Range-checked *before* the cast:
/// socket input is untrusted, and casting an out-of-range double to
/// int is undefined behavior.
int int_field_or(const JsonValue& message, const std::string& key,
                 int fallback) {
  const JsonValue* value = message.find(key);
  if (value == nullptr || value->is_null()) return fallback;
  const double number = value->as_double();
  BGLS_REQUIRE(number >= static_cast<double>(std::numeric_limits<int>::min()) &&
                   number <= static_cast<double>(std::numeric_limits<int>::max()),
               "field '", key, "' is out of integer range");
  const int as_int = static_cast<int>(number);
  BGLS_REQUIRE(static_cast<double>(as_int) == number, "field '", key,
               "' must be an integer");
  return as_int;
}

}  // namespace

std::string submit_request_line(const SubmitArgs& args) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("op").value("submit");
  json.key("qasm").value(args.qasm);
  json.key("backend").value(args.backend);
  json.key("reps").value(args.repetitions);
  json.key("seed").value(args.seed);
  json.key("threads").value(args.threads);
  json.key("streams").value(args.streams);
  json.key("optimize").value(args.optimize);
  json.key("no_batch").value(args.no_batch);
  json.key("priority").value(args.priority);
  if (!args.tenant.empty()) json.key("tenant").value(args.tenant);
  json.key("deadline_ms").value(args.deadline_ms);
  json.key("progress_every").value(args.progress_every);
  if (args.trace_id != 0) {
    json.key("trace_id").value(args.trace_id);
    if (args.parent_span_id != 0) {
      json.key("parent_span_id").value(args.parent_span_id);
    }
  }
  json.end_object();
  os << "\n";
  return os.str();
}

std::string job_request_line(const std::string& op, std::uint64_t job) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("op").value(op);
  json.key("job").value(job);
  json.end_object();
  os << "\n";
  return os.str();
}

std::string wait_request_line(std::uint64_t job, std::uint64_t timeout_ms) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("op").value("wait");
  json.key("job").value(job);
  if (timeout_ms > 0) json.key("timeout_ms").value(timeout_ms);
  json.end_object();
  os << "\n";
  return os.str();
}

std::string op_request_line(const std::string& op) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("op").value(op);
  json.end_object();
  os << "\n";
  return os.str();
}

std::string logs_request_line(const std::string& level, std::uint64_t trace_id,
                              std::uint64_t limit) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("op").value("logs");
  if (!level.empty()) json.key("level").value(level);
  if (trace_id != 0) json.key("trace_id").value(trace_id);
  if (limit != 0) json.key("limit").value(limit);
  json.end_object();
  os << "\n";
  return os.str();
}

RunRequest parse_submit(const JsonValue& message) {
  const JsonValue* qasm = message.find("qasm");
  BGLS_REQUIRE(qasm != nullptr, "submit needs a 'qasm' field");
  RunRequest request =
      RunRequest()
          .with_circuit(parse_qasm(qasm->as_string()))
          .with_repetitions(message.u64_or("reps", 1024))
          .with_seed(message.u64_or("seed", 0))
          .with_threads(int_field_or(message, "threads", 1))
          .with_rng_streams(message.u64_or("streams", 16))
          .with_optimization(message.bool_or("optimize", false))
          .with_sample_parallelization(!message.bool_or("no_batch", false))
          .with_priority(int_field_or(message, "priority", 0))
          .with_tenant(message.string_or("tenant", ""))
          .with_deadline_ms(message.u64_or("deadline_ms", 0));
  request.progress.every = message.u64_or("progress_every", 0);
  request.with_trace_context(message.u64_or("trace_id", 0),
                             message.u64_or("parent_span_id", 0));
  const std::string backend = message.string_or("backend", "auto");
  // "auto" keeps the RunRequest default (kAuto routing); anything else
  // is a registry name — same contract as the bgls_run CLI.
  if (detail::ascii_lower(backend) != "auto") {
    request.with_backend(backend);
  }
  return request;
}

void write_spans(JsonWriter& json, const std::vector<obs::SpanRecord>& spans) {
  json.begin_array();
  for (const obs::SpanRecord& span : spans) {
    json.begin_object();
    json.key("id").value(span.id);
    json.key("parent").value(span.parent);
    json.key("name").value(span.name);
    json.key("index").value(span.index);
    json.key("seconds").value(span.seconds);
    json.end_object();
  }
  json.end_array();
}

std::vector<obs::SpanRecord> parse_spans(const JsonValue& response) {
  std::vector<obs::SpanRecord> spans;
  const JsonValue* array = response.find("spans");
  if (array == nullptr) return spans;
  for (const JsonValue& item : array->items()) {
    obs::SpanRecord span;
    span.id = item.u64_or("id", 0);
    span.parent = item.u64_or("parent", 0);
    span.name = item.string_or("name", "");
    span.index = item.u64_or("index", 0);
    const JsonValue* seconds = item.find("seconds");
    span.seconds = seconds != nullptr ? seconds->as_double() : 0.0;
    spans.push_back(std::move(span));
  }
  return spans;
}

void write_progress_histograms(JsonWriter& json,
                               const ProgressUpdate& update) {
  json.begin_object();
  for (const auto& [key, counts] : update.histograms) {
    json.key(key).begin_object();
    for (const auto& [bits, count] : counts) {
      json.key(std::to_string(bits)).value(count);
    }
    json.end_object();
  }
  json.end_object();
}

}  // namespace bgls::service

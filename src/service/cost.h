/// \file cost.h
/// CostModel — predicted wall seconds for a sampling request, fitted
/// offline from the recorded BENCH_*.json artifacts.
///
/// The gate-by-gate algorithm's cost is almost perfectly predictable
/// from circuit shape (qsim's noise paper makes the same observation:
/// runtime scales with qubits × ops × trajectories). Each backend has a
/// closed-form element count per gate application:
///
///   statevector    ops · 2^n          (one evolution; channel-bearing
///                                      circuits re-evolve per
///                                      trajectory)
///   densitymatrix  ops · 4^n          (exact channel branching, one
///                                      pass regardless of repetitions)
///   stabilizer     ops · n²/64        (bit-packed CH-form rows; pure
///                                      Clifford evolves once)
///   mps            ops · n · χ³       (contraction + SVD per gate,
///                                      χ estimated from the
///                                      entangling-gate density)
///
/// multiplied by a fitted seconds-per-element coefficient, plus a
/// per-repetition sampling term and a fixed per-job scheduling
/// overhead. Two consumers:
///
///  - BackendSelector (api/selector.cpp) compares predicted costs
///    instead of hard-coded qubit cutoffs — densitymatrix wins over
///    statevector trajectories exactly while 4^n·ops ≤ reps·2^n·ops,
///    i.e. 2^n ≤ reps, which reproduces the old
///    max_density_matrix_qubits=10 boundary at the default 1024
///    repetitions;
///  - JobScheduler admission (service/scheduler.h) rejects submissions
///    whose predicted seconds exceed the configured budget before any
///    sampling happens, with an `over_budget` slug on the wire.

#pragma once

#include <cstdint>
#include <string>

#include "api/run_types.h"
#include "util/error.h"
#include "util/json_parser.h"

namespace bgls {
struct CircuitProfile;  // api/selector.h
}

namespace bgls::service {

/// Thrown by JobScheduler::submit when cost-aware admission rejects the
/// job (predicted seconds over the per-job budget, or the predicted
/// queue backlog over the backlog budget). The backlog case is
/// retryable — resubmitting later, once queued work drains, can
/// succeed; the per-job case needs a smaller request (fewer
/// repetitions, narrower circuit, or an explicit cheaper backend).
class CostBudgetError : public Error {
 public:
  using Error::Error;
};

/// Fitted seconds-per-unit coefficients. Defaults are fitted from the
/// committed BENCH artifacts on the recording host:
///  - sv/dm: BENCH_micro_states.json BM_StateVector_ApplyH/20
///    (≈ 0.97 ms per 2^20-amplitude sweep → ≈ 0.93 ns per amplitude;
///    rounded up to 1 ns to cover non-Hadamard gate classes). The
///    density matrix does the same dense per-element work over 4^n
///    elements, so it shares the coefficient — which is exactly what
///    makes the DM-vs-trajectories crossover land at 2^n = reps.
///  - mps: SVD-dominated; ≈ 16 dense-element units per tensor element
///    (linalg/svd.cpp is an unblocked one-sided Jacobi — far from the
///    statevector kernels' streaming bandwidth).
///  - stabilizer: bit-packed row updates, ≈ 1 ns per packed word.
///  - sample + overhead: BENCH_service.json session_direct vs
///    scheduler_1 rows (200 jobs × 1024 reps): ≈ 21 µs per rep
///    end-to-end at 4 qubits, of which the evolution term explains the
///    rest; ≈ 0.2 ms fixed per job through the scheduler.
struct CostCoefficients {
  double sv_seconds_per_element = 1.0e-9;
  double dm_seconds_per_element = 1.0e-9;
  double stabilizer_seconds_per_word = 1.0e-9;
  double mps_seconds_per_element = 1.6e-8;
  double sample_seconds_per_repetition = 2.0e-8;
  double job_overhead_seconds = 2.0e-4;
};

/// Predicts job wall seconds from routing features (api/selector.h's
/// CircuitProfile), repetitions, and the executing backend.
class CostModel {
 public:
  /// The committed-artifact fit (see CostCoefficients).
  CostModel() = default;
  explicit CostModel(CostCoefficients coefficients)
      : coefficients_(coefficients) {}

  /// Re-fits the statevector/densitymatrix coefficient from a
  /// google-benchmark BENCH_micro_states.json document and the per-job
  /// overhead from a BENCH_service.json document. Either document may
  /// be null-kind or lack the expected rows — the corresponding
  /// defaults are kept (fitting is best-effort: a missing artifact
  /// must never take the service down).
  [[nodiscard]] static CostModel fitted(const JsonValue& micro_states,
                                        const JsonValue& service);

  /// fitted() over file paths; unreadable or malformed files keep the
  /// defaults.
  [[nodiscard]] static CostModel fitted_from_files(
      const std::string& micro_states_path, const std::string& service_path);

  /// Predicted wall seconds for sampling `repetitions` shots of a
  /// circuit with these features on `backend`. Throws ValueError for
  /// kAuto/kCustom — resolve the backend first (custom backends have
  /// no closed form; the scheduler skips cost admission for them).
  [[nodiscard]] double predict_seconds(const CircuitProfile& profile,
                                       std::uint64_t repetitions,
                                       BackendId backend) const;

  /// The χ estimate behind the MPS term: bond dimension grows at most
  /// one power of two per entangling layer, saturating at 2^(n/2) —
  /// clamped so the estimate stays finite for adversarial profiles.
  [[nodiscard]] static double estimated_bond_dimension(
      const CircuitProfile& profile);

  [[nodiscard]] const CostCoefficients& coefficients() const {
    return coefficients_;
  }

 private:
  CostCoefficients coefficients_;
};

}  // namespace bgls::service

#include "service/daemon.h"

#include <chrono>
#include <sstream>
#include <utility>

#include "obs/exposition.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "service/protocol.h"
#include "util/error.h"
#include "util/json_writer.h"

namespace bgls::service {
namespace {

using namespace std::chrono_literals;

/// Daemon series. Per-op counters are pre-registered (the map is
/// read-only after construction), so the request path only touches
/// relaxed atomics.
struct DaemonMetrics {
  std::map<std::string, obs::Counter, std::less<>> requests;
  obs::Counter unknown_requests;
  obs::Histogram request_seconds;
  obs::Counter connections;
  obs::Gauge open_connections;

  DaemonMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    const char* help = "Requests handled, by op";
    for (const char* op : {"submit", "status", "cancel", "result", "wait",
                           "stream", "stats", "metrics", "trace", "logs",
                           "shutdown"}) {
      requests.emplace(
          op, registry.counter("bgls_daemon_requests_total{op=\"" +
                                   std::string(op) + "\"}",
                               help));
    }
    unknown_requests =
        registry.counter("bgls_daemon_requests_total{op=\"other\"}", help);
    request_seconds = registry.histogram(
        "bgls_daemon_request_seconds",
        "Wall time handling one request line (stream/wait ops include "
        "the time spent following the job)");
    connections = registry.counter("bgls_daemon_connections_total",
                                   "Client connections accepted");
    open_connections = registry.gauge("bgls_daemon_open_connections",
                                      "Client connections currently open");
  }

  void count(std::string_view op) {
    const auto it = requests.find(op);
    (it != requests.end() ? it->second : unknown_requests).add();
  }

  static DaemonMetrics& instance() {
    static DaemonMetrics metrics;
    return metrics;
  }
};

/// Builds one compact response line ({"ok":...,...}\n) via a filler
/// callback receiving the open JsonWriter object scope.
template <typename Fill>
std::string response_line(bool ok, Fill fill) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("ok").value(ok);
  fill(json);
  json.end_object();
  os << "\n";
  return os.str();
}

std::string error_line(const std::string& code, const std::string& message) {
  return response_line(false, [&](JsonWriter& json) {
    json.key("code").value(code);
    json.key("error").value(message);
  });
}

/// Maps a terminal non-done job state onto its wire error code.
std::string state_error_code(JobState state) {
  return std::string(job_state_name(state));
}

/// Builds one compact journal record body via a filler callback.
template <typename Fill>
std::string journal_record(std::string_view type, std::uint64_t job,
                           Fill fill) {
  std::ostringstream os;
  JsonWriter json(os, JsonWriter::Style::kCompact);
  json.begin_object();
  json.key("type").value(type);
  json.key("job").value(job);
  fill(json);
  json.end_object();
  return os.str();
}

std::string submit_record(std::uint64_t job, const std::string& line) {
  return journal_record("submit", job,
                        [&](JsonWriter& json) { json.key("line").value(line); });
}

std::string checkpoint_record(std::uint64_t job,
                              const std::string& checkpoint_json) {
  // `checkpoint_json` is already compact JSON (RunCheckpoint::to_json),
  // spliced in verbatim.
  std::string body = "{\"type\":\"checkpoint\",\"job\":";
  body += std::to_string(job);
  body += ",\"data\":";
  body += checkpoint_json;
  body += "}";
  return body;
}

std::string evict_record(std::uint64_t job) {
  return journal_record("evict", job, [](JsonWriter&) {});
}

}  // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions options)
    : options_(std::move(options)), scheduler_(hooked_scheduler_options()) {}

SchedulerOptions& ServiceDaemon::hooked_scheduler_options() {
  SchedulerOptions& scheduler = options_.scheduler;
  if (options_.journal_path.empty()) return scheduler;
  scheduler.on_terminal = [this](const JobInfo& info) {
    journal_terminal(info);
  };
  scheduler.on_checkpoint = [this](std::uint64_t id,
                                   std::shared_ptr<const RunCheckpoint> ckpt) {
    if (!journal_.is_open() || ckpt == nullptr) return;
    journal_.append(checkpoint_record(id, ckpt->to_json()));
  };
  scheduler.on_evict = [this](std::uint64_t id) {
    if (!journal_.is_open()) return;
    journal_.append(evict_record(id));
  };
  return scheduler;
}

void ServiceDaemon::journal_terminal(const JobInfo& info) {
  if (!journal_.is_open()) return;
  std::string record;
  if (info.state == JobState::kDone && info.result != nullptr) {
    RunReportContext context;
    bool have_context = false;
    {
      const std::lock_guard<std::mutex> lock(contexts_mutex_);
      const auto it = contexts_.find(info.id);
      if (it != contexts_.end()) {
        context = it->second;
        have_context = true;
      }
    }
    if (!have_context) return;  // evicted side table; nothing to journal
    record = journal_record("terminal", info.id, [&](JsonWriter& json) {
      json.key("state").value(job_state_name(info.state));
      json.key("backend").value(info.result->backend_name);
      json.key("selection_reason").value(info.result->selection_reason);
      json.key("report").value(run_report_string(context, *info.result));
    });
  } else {
    record = journal_record("terminal", info.id, [&](JsonWriter& json) {
      json.key("state").value(job_state_name(info.state));
      json.key("error").value(info.error);
    });
  }
  journal_.append(record);
}

ServiceDaemon::~ServiceDaemon() { stop(); }

void ServiceDaemon::start() {
  BGLS_REQUIRE(!started_, "daemon already started");
  if (!options_.journal_path.empty() && !journal_.is_open()) {
    replay_journal();
  }
  server_.listen_on(options_.endpoint);
  started_ = true;
  acceptor_ = std::thread([this] { accept_loop(); });
}

void ServiceDaemon::replay_journal() {
  const auto replay_start = std::chrono::steady_clock::now();
  std::size_t skipped = 0;
  const std::vector<JsonValue> records =
      Journal::replay_file(options_.journal_path, &skipped);

  // Fold the event stream into per-job final state. Records after an
  // evict (or for ids never submitted *and* never terminal) are
  // dropped; the last checkpoint wins.
  struct Pending {
    std::string line;
    std::shared_ptr<const RunCheckpoint> checkpoint;
    std::string checkpoint_json;
    bool terminal = false;
    ReplayedResult result;
  };
  std::map<std::uint64_t, Pending> pending;
  std::uint64_t max_id = 0;
  for (const JsonValue& record : records) {
    const std::string type = record.string_or("type", "");
    const std::uint64_t id = record.u64_or("job", 0);
    if (id == 0) continue;
    max_id = std::max(max_id, id);
    if (type == "evict") {
      pending.erase(id);
      continue;
    }
    Pending& job = pending[id];
    if (type == "submit") {
      job.line = record.string_or("line", "");
    } else if (type == "checkpoint") {
      const JsonValue* data = record.find("data");
      if (data != nullptr) {
        try {
          RunCheckpoint parsed = RunCheckpoint::from_json(*data);
          job.checkpoint_json = parsed.to_json();
          job.checkpoint =
              std::make_shared<const RunCheckpoint>(std::move(parsed));
        } catch (const Error&) {
          // Unreadable snapshot: resume from the previous one (or from
          // scratch — determinism makes the re-run byte-identical).
        }
      }
    } else if (type == "terminal") {
      job.terminal = true;
      ReplayedResult& result = job.result;
      const std::string state = record.string_or("state", "failed");
      result.state = state == "done"        ? JobState::kDone
                     : state == "cancelled" ? JobState::kCancelled
                     : state == "timeout"   ? JobState::kTimedOut
                                            : JobState::kFailed;
      result.error = record.string_or("error", "");
      result.backend = record.string_or("backend", "");
      result.selection_reason = record.string_or("selection_reason", "");
      result.report = record.string_or("report", "");
    }
  }

  scheduler_.reserve_ids_through(max_id);

  // Compact to the live set — terminal records (so results survive any
  // number of restarts) plus submit+latest-checkpoint for incomplete
  // jobs — then reopen for appending.
  std::vector<std::string> compacted;
  for (const auto& [id, job] : pending) {
    if (job.terminal) {
      const ReplayedResult& result = job.result;
      compacted.push_back(journal_record(
          "terminal", id, [&](JsonWriter& json) {
            json.key("state").value(job_state_name(result.state));
            if (result.state == JobState::kDone) {
              json.key("backend").value(result.backend);
              json.key("selection_reason").value(result.selection_reason);
              json.key("report").value(result.report);
            } else {
              json.key("error").value(result.error);
            }
          }));
    } else if (!job.line.empty()) {
      compacted.push_back(submit_record(id, job.line));
      if (job.checkpoint != nullptr) {
        compacted.push_back(checkpoint_record(id, job.checkpoint_json));
      }
    }
  }
  Journal::compact_file(options_.journal_path, compacted);
  journal_.open(options_.journal_path);

  // Re-enqueue incomplete jobs under their journaled ids (the journal
  // is open first, so their terminal events are recorded), and answer
  // queries for terminal ones from memory.
  std::uint64_t terminal_jobs = 0;
  std::uint64_t resubmitted = 0;
  std::uint64_t dropped = 0;
  for (auto& [id, job] : pending) {
    if (job.terminal) {
      const std::lock_guard<std::mutex> lock(replayed_mutex_);
      replayed_.emplace(id, std::move(job.result));
      ++terminal_jobs;
      continue;
    }
    if (job.line.empty()) continue;  // checkpoint without submit
    try {
      RunRequest request = parse_submit(JsonValue::parse(job.line));
      const RunReportContext context =
          report_context(request, request.circuit.num_qubits());
      if (job.checkpoint != nullptr) request.resume = job.checkpoint;
      {
        const std::lock_guard<std::mutex> lock(contexts_mutex_);
        contexts_.emplace(id, context);
      }
      scheduler_.resubmit(std::move(request), id);
      ++resubmitted;
    } catch (const std::exception&) {
      // A submit line that no longer parses (or a duplicate id): drop
      // the job rather than refuse to start.
      ++dropped;
    }
  }
  const double replay_seconds = std::chrono::duration<double>(
                                    std::chrono::steady_clock::now() -
                                    replay_start)
                                    .count();
  record_journal_replay_seconds(replay_seconds);
  obs::log(obs::LogLevel::kInfo, "daemon", "journal replayed",
           {{"terminal_jobs", terminal_jobs},
            {"resubmitted", resubmitted},
            {"dropped", dropped},
            {"seconds", replay_seconds}});
}

void ServiceDaemon::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  server_.close();
  if (acceptor_.joinable()) acceptor_.join();
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    // Unblock handler threads stuck in read_line; fds are released when
    // the Connection objects die below, after the joins.
    for (auto& connection : connections_) connection->socket.shutdown_both();
  }
  std::vector<std::unique_ptr<Connection>> connections;
  {
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections.swap(connections_);
  }
  for (auto& connection : connections) {
    if (connection->thread.joinable()) connection->thread.join();
  }
  // Durability barrier: every acknowledged record is on disk before we
  // report stopped. The journal stays open — scheduler runners may
  // still finish (and journal) jobs until ~JobScheduler joins them.
  if (journal_.is_open()) journal_.flush();
  started_ = false;
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void ServiceDaemon::wait_for_shutdown() {
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_; });
}

void ServiceDaemon::request_shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_requested_ = true;
  }
  shutdown_cv_.notify_all();
}

void ServiceDaemon::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Socket socket = server_.accept();
    if (!socket.valid()) break;  // close()d
    reap_connections();
    auto connection = std::make_unique<Connection>();
    connection->socket = std::move(socket);
    Connection* raw = connection.get();
    connection->thread = std::thread([this, raw] { handle_connection(*raw); });
    const std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.push_back(std::move(connection));
  }
}

void ServiceDaemon::reap_connections() {
  const std::lock_guard<std::mutex> lock(connections_mutex_);
  auto it = connections_.begin();
  while (it != connections_.end()) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void ServiceDaemon::handle_connection(Connection& connection) {
  DaemonMetrics& metrics = DaemonMetrics::instance();
  metrics.connections.add();
  metrics.open_connections.add(1);
  std::string line;
  try {
    while (connection.socket.read_line(line)) {
      if (line.empty()) continue;
      handle_line(line, connection.socket);
    }
  } catch (const IoError&) {
    // Peer vanished mid-request/response — normal client churn.
  }
  metrics.open_connections.sub(1);
  connection.done.store(true, std::memory_order_release);
}

void ServiceDaemon::handle_line(const std::string& line, Socket& socket) {
  JsonValue message;
  try {
    message = JsonValue::parse(line);
  } catch (const ParseError& e) {
    socket.write_all(error_line("parse_error", e.what()));
    return;
  }
  std::string op;
  const auto request_start = std::chrono::steady_clock::now();
  try {
    op = message.string_or("op", "");
    DaemonMetrics::instance().count(op);
    if (op == "submit") {
      handle_submit(message, line, socket);
    } else if (op == "status") {
      handle_status(message, socket);
    } else if (op == "cancel") {
      handle_cancel(message, socket);
    } else if (op == "result") {
      handle_result_or_wait(message, socket, /*wait=*/false);
    } else if (op == "wait") {
      handle_result_or_wait(message, socket, /*wait=*/true);
    } else if (op == "stream") {
      handle_stream(message, socket);
    } else if (op == "stats") {
      handle_stats(socket);
    } else if (op == "metrics") {
      handle_metrics(socket);
    } else if (op == "trace") {
      handle_trace(message, socket);
    } else if (op == "logs") {
      handle_logs(message, socket);
    } else if (op == "shutdown") {
      socket.write_all(response_line(true, [](JsonWriter&) {}));
      {
        const std::lock_guard<std::mutex> lock(shutdown_mutex_);
        shutdown_requested_ = true;
      }
      shutdown_cv_.notify_all();
    } else {
      socket.write_all(
          error_line("unknown_op", "unknown op '" + op + "'"));
    }
  } catch (const IoError&) {
    throw;  // connection-level: let the handler loop exit
  } catch (const QueueFullError& e) {
    socket.write_all(error_line("queue_full", e.what()));
  } catch (const TenantQuotaError& e) {
    // Retryable like queue_full: the tenant's backlog drains.
    socket.write_all(error_line("tenant_quota", e.what()));
  } catch (const CostBudgetError& e) {
    // Retryable only for the backlog budget; a per-job over-budget
    // rejection re-fails identically, but the slug lets clients decide.
    socket.write_all(error_line("over_budget", e.what()));
  } catch (const JournalError& e) {
    // Transient durability failure: the client should back off and
    // retry (bgls_client --retries does).
    socket.write_all(error_line("journal_error", e.what()));
  } catch (const ParseError& e) {
    socket.write_all(error_line("parse_error", e.what()));
  } catch (const std::exception& e) {
    // Unknown job ids, malformed fields, capability errors, ...
    socket.write_all(error_line("bad_request", e.what()));
  }
  const double request_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    request_start)
          .count();
  DaemonMetrics::instance().request_seconds.observe(request_seconds);
  if (options_.slow_request_ms > 0 &&
      request_seconds * 1000.0 >=
          static_cast<double>(options_.slow_request_ms)) {
    // Resolve the request's trace id for correlation: submits carry it
    // inline; job ops go through the job's trace.
    const std::uint64_t job_id = message.u64_or("job", 0);
    std::uint64_t trace_id = message.u64_or("trace_id", 0);
    if (trace_id == 0 && job_id != 0) {
      try {
        const JobInfo info = scheduler_.info(job_id);
        if (info.trace != nullptr) trace_id = info.trace->id();
      } catch (const std::exception&) {
        // Unknown/evicted job — log without correlation.
      }
    }
    obs::log(obs::LogLevel::kWarn, "daemon", "slow request",
             {{"op", op}, {"ms", request_seconds * 1000.0}}, trace_id, job_id);
  }
}

void ServiceDaemon::handle_submit(const JsonValue& message,
                                  const std::string& line, Socket& socket) {
  RunRequest request = parse_submit(message);
  // Same width the CLI reports (no clamping) — the report must match
  // bgls_run byte for byte.
  const RunReportContext context =
      report_context(request, request.circuit.num_qubits());
  const std::uint64_t id = scheduler_.submit(std::move(request));
  {
    // Store this job's report context and prune entries for jobs the
    // scheduler's retention bound has evicted, so the daemon's side
    // table stays bounded alongside jobs_.
    const std::uint64_t min_retained = scheduler_.min_retained_id();
    const std::lock_guard<std::mutex> lock(contexts_mutex_);
    contexts_.emplace(id, context);
    contexts_.erase(contexts_.begin(),
                    contexts_.lower_bound(min_retained));
  }
  // Journal-before-ack: once the client sees the job id, a crash-and-
  // restart daemon still knows the job. On a journal failure the job
  // keeps running but the client gets journal_error and must retry —
  // the orphan's terminal record is dropped at the next replay.
  if (journal_.is_open()) journal_.append(submit_record(id, line));
  // Cache hits are born terminal — report the real state so clients
  // can skip straight to `result` without polling.
  JobState state = JobState::kQueued;
  bool from_cache = false;
  try {
    const JobInfo info = scheduler_.info(id);
    state = info.state;
    from_cache = info.from_cache;
  } catch (const ValueError&) {
    // Evicted already (pathologically small retention) — keep kQueued.
  }
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("job").value(id);
    json.key("state").value(job_state_name(state));
    if (from_cache) json.key("from_cache").value(true);
  }));
}

std::uint64_t ServiceDaemon::job_field(const JsonValue& message) const {
  const JsonValue* job = message.find("job");
  BGLS_REQUIRE(job != nullptr, "request needs a 'job' field");
  return job->as_u64();
}

bool ServiceDaemon::find_replayed(std::uint64_t id,
                                  ReplayedResult& out) const {
  const std::lock_guard<std::mutex> lock(replayed_mutex_);
  const auto it = replayed_.find(id);
  if (it == replayed_.end()) return false;
  out = it->second;
  return true;
}

bool ServiceDaemon::send_replayed(std::uint64_t id, Socket& socket,
                                  const std::string& type) {
  ReplayedResult replayed;
  if (!find_replayed(id, replayed)) return false;
  // Same wire shape as send_result, rebuilt from the journaled report.
  if (replayed.state == JobState::kDone) {
    socket.write_all(response_line(true, [&](JsonWriter& json) {
      if (!type.empty()) json.key("type").value(type);
      json.key("job").value(id);
      json.key("state").value(job_state_name(replayed.state));
      json.key("backend").value(replayed.backend);
      json.key("selection_reason").value(replayed.selection_reason);
      json.key("report").value(replayed.report);
    }));
    return true;
  }
  socket.write_all(response_line(false, [&](JsonWriter& json) {
    if (!type.empty()) json.key("type").value(type);
    json.key("job").value(id);
    json.key("code").value(state_error_code(replayed.state));
    json.key("state").value(job_state_name(replayed.state));
    json.key("error").value(replayed.error);
  }));
  return true;
}

void ServiceDaemon::handle_status(const JsonValue& message, Socket& socket) {
  const std::uint64_t id = job_field(message);
  JobInfo info;
  try {
    info = scheduler_.info(id);
  } catch (const ValueError&) {
    ReplayedResult replayed;
    if (!find_replayed(id, replayed)) throw;
    socket.write_all(response_line(true, [&](JsonWriter& json) {
      json.key("job").value(id);
      json.key("state").value(job_state_name(replayed.state));
      if (!replayed.error.empty()) json.key("error").value(replayed.error);
      if (!replayed.backend.empty()) {
        json.key("backend").value(replayed.backend);
        json.key("selection_reason").value(replayed.selection_reason);
      }
    }));
    return;
  }
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("job").value(info.id);
    json.key("state").value(job_state_name(info.state));
    json.key("priority").value(info.priority);
    json.key("completed").value(info.completed_repetitions);
    json.key("total").value(info.total_repetitions);
    json.key("updates").value(
        static_cast<std::uint64_t>(info.progress_updates));
    // Scheduling timings (milliseconds; live jobs report so-far values).
    // Not byte-pinned — unlike the `result` report, status is a
    // monitoring endpoint and may grow fields.
    json.key("queue_ms").value(info.queue_seconds * 1000.0);
    json.key("run_ms").value(info.run_seconds * 1000.0);
    if (!info.error.empty()) json.key("error").value(info.error);
    if (info.result) {
      json.key("backend").value(info.result->backend_name);
      json.key("selection_reason").value(info.result->selection_reason);
      const RunStats& stats = info.result->stats;
      json.key("queue_wait_ms").value(stats.queue_wait_ms);
      json.key("optimize_ms").value(stats.optimize_ms);
      json.key("evolve_ms").value(stats.evolve_ms);
      json.key("sample_ms").value(stats.sample_ms);
    }
  }));
}

void ServiceDaemon::handle_cancel(const JsonValue& message, Socket& socket) {
  const std::uint64_t id = job_field(message);
  const bool cancelled = scheduler_.cancel(id);
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("job").value(id);
    json.key("cancelled").value(cancelled);
  }));
}

void ServiceDaemon::send_result(const JobInfo& info, Socket& socket,
                                const std::string& type) {
  if (info.state == JobState::kDone) {
    RunReportContext context;
    {
      const std::lock_guard<std::mutex> lock(contexts_mutex_);
      const auto it = contexts_.find(info.id);
      if (it == contexts_.end()) {
        // Evicted by retention between the info() snapshot and here.
        socket.write_all(error_line(
            "unknown_job", "job " + std::to_string(info.id) +
                               " was evicted by the retention bound"));
        return;
      }
      context = it->second;
    }
    const std::string report = run_report_string(context, *info.result);
    socket.write_all(response_line(true, [&](JsonWriter& json) {
      if (!type.empty()) json.key("type").value(type);
      json.key("job").value(info.id);
      json.key("state").value(job_state_name(info.state));
      json.key("backend").value(info.result->backend_name);
      json.key("selection_reason").value(info.result->selection_reason);
      json.key("report").value(report);
    }));
    return;
  }
  if (!is_terminal(info.state)) {
    socket.write_all(error_line(
        "not_done", "job " + std::to_string(info.id) + " is " +
                        std::string(job_state_name(info.state))));
    return;
  }
  socket.write_all(response_line(false, [&](JsonWriter& json) {
    if (!type.empty()) json.key("type").value(type);
    json.key("job").value(info.id);
    json.key("code").value(state_error_code(info.state));
    json.key("state").value(job_state_name(info.state));
    json.key("error").value(info.error);
  }));
}

void ServiceDaemon::handle_result_or_wait(const JsonValue& message,
                                          Socket& socket, bool wait) {
  const std::uint64_t id = job_field(message);
  JobInfo info;
  try {
    info = scheduler_.info(id);
  } catch (const ValueError&) {
    if (send_replayed(id, socket, "")) return;
    throw;
  }
  if (wait) {
    // Bounded waits keep stop() responsive: poll the scheduler in
    // slices instead of blocking unboundedly on the condition variable.
    const std::uint64_t timeout_ms = message.u64_or("timeout_ms", 0);
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (!is_terminal(info.state) &&
           !stopping_.load(std::memory_order_acquire)) {
      if (timeout_ms > 0 && std::chrono::steady_clock::now() >= deadline) {
        break;
      }
      info = scheduler_.wait(id, 200ms);
    }
  }
  send_result(info, socket, "");
}

void ServiceDaemon::handle_stream(const JsonValue& message, Socket& socket) {
  const std::uint64_t id = job_field(message);
  if (send_replayed(id, socket, "result")) return;
  std::size_t cursor = 0;
  while (true) {
    for (const ProgressUpdate& update : scheduler_.progress_since(id, cursor)) {
      ++cursor;
      socket.write_all(response_line(true, [&](JsonWriter& json) {
        json.key("type").value("progress");
        json.key("job").value(id);
        json.key("completed").value(update.completed_repetitions);
        json.key("total").value(update.total_repetitions);
        json.key("final").value(update.final);
        json.key("histograms");
        write_progress_histograms(json, update);
      }));
    }
    const JobInfo info = scheduler_.info(id);
    if (is_terminal(info.state) &&
        scheduler_.progress_since(id, cursor).empty()) {
      send_result(info, socket, "result");
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      send_result(info, socket, "result");
      return;
    }
    scheduler_.wait_progress(id, cursor, 200ms);
  }
}

void ServiceDaemon::handle_stats(Socket& socket) {
  const SchedulerStats stats = scheduler_.stats();
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("submitted").value(stats.submitted);
    json.key("rejected").value(stats.rejected);
    json.key("completed").value(stats.completed);
    json.key("failed").value(stats.failed);
    json.key("cancelled").value(stats.cancelled);
    json.key("timed_out").value(stats.timed_out);
    json.key("evicted").value(stats.evicted);
    json.key("retried").value(stats.retried);
    json.key("preempted").value(stats.preempted);
    json.key("resumed").value(stats.resumed);
    json.key("queue_depth").value(
        static_cast<std::uint64_t>(stats.queue_depth));
    json.key("running").value(static_cast<std::uint64_t>(stats.running));
    json.key("cache_hits").value(stats.cache_hits);
    json.key("completed_per_backend").begin_object();
    for (const auto& [backend, count] : stats.completed_per_backend) {
      json.key(backend).value(count);
    }
    json.end_object();
    json.key("completed_per_tenant").begin_object();
    for (const auto& [tenant, count] : stats.completed_per_tenant) {
      json.key(tenant).value(count);
    }
    json.end_object();
  }));
}

void ServiceDaemon::handle_metrics(Socket& socket) {
  // The whole process-wide registry, not just daemon series: a scrape
  // sees kernel/engine/pool/scheduler series from the same snapshot.
  const std::string text =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("metrics").value(text);
  }));
}

void ServiceDaemon::handle_trace(const JsonValue& message, Socket& socket) {
  const std::uint64_t id = job_field(message);
  const JobInfo info = scheduler_.info(id);  // throws on unknown id
  std::uint64_t trace_id = 0;
  std::vector<obs::SpanRecord> spans;
  if (info.trace != nullptr) {
    trace_id = info.trace->id();
    spans = info.trace->spans();  // sorted (name, index, id)
  }
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("job").value(id);
    json.key("trace_id").value(trace_id);
    json.key("spans");
    write_spans(json, spans);
  }));
}

void ServiceDaemon::handle_logs(const JsonValue& message, Socket& socket) {
  const std::string level_name = message.string_or("level", "debug");
  obs::LogLevel min_level = obs::LogLevel::kDebug;
  BGLS_REQUIRE(obs::parse_log_level(level_name, &min_level),
               "unknown log level '", level_name,
               "' (expected debug/info/warn/error)");
  const std::uint64_t trace_id = message.u64_or("trace_id", 0);
  const std::uint64_t limit = message.u64_or("limit", 100);
  const std::vector<obs::LogRecord> records = obs::Logger::global().tail(
      static_cast<std::size_t>(limit), min_level, trace_id);
  socket.write_all(response_line(true, [&](JsonWriter& json) {
    json.key("count").value(static_cast<std::uint64_t>(records.size()));
    json.key("lines").begin_array();
    for (const obs::LogRecord& record : records) {
      json.value(obs::format_log_line(record));
    }
    json.end_array();
  }));
}

}  // namespace bgls::service

#include "service/cost.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "api/selector.h"

namespace bgls::service {
namespace {

/// Reads a whole file; empty string on any failure (best-effort fit).
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// google-benchmark document → real_time (ns) of the named benchmark,
/// or 0 when absent/malformed.
double benchmark_real_time_ns(const JsonValue& doc, const std::string& name) {
  const JsonValue* benchmarks = doc.find("benchmarks");
  if (benchmarks == nullptr ||
      benchmarks->kind() != JsonValue::Kind::kArray) {
    return 0.0;
  }
  for (const JsonValue& row : benchmarks->items()) {
    if (row.string_or("name", "") != name) continue;
    const JsonValue* real_time = row.find("real_time");
    if (real_time == nullptr) return 0.0;
    const double value = real_time->as_double();
    // Committed artifacts record nanoseconds; honor the unit field if a
    // future recording changes it.
    const std::string unit = row.string_or("time_unit", "ns");
    if (unit == "us") return value * 1e3;
    if (unit == "ms") return value * 1e6;
    if (unit == "s") return value * 1e9;
    return value;
  }
  return 0.0;
}

/// BENCH_service.json row lookup → seconds-per-job, or 0 when absent.
double service_seconds_per_job(const JsonValue& doc,
                               const std::string& path_name) {
  const JsonValue* rows = doc.find("rows");
  const JsonValue* jobs = doc.find("jobs");
  if (rows == nullptr || rows->kind() != JsonValue::Kind::kArray ||
      jobs == nullptr) {
    return 0.0;
  }
  const double job_count = jobs->as_double();
  if (job_count <= 0) return 0.0;
  for (const JsonValue& row : rows->items()) {
    if (row.string_or("path", "") != path_name) continue;
    const JsonValue* seconds = row.find("seconds");
    if (seconds == nullptr) return 0.0;
    return seconds->as_double() / job_count;
  }
  return 0.0;
}

}  // namespace

CostModel CostModel::fitted(const JsonValue& micro_states,
                            const JsonValue& service) {
  CostCoefficients c;  // start from the committed-artifact defaults
  // One Hadamard sweep over 2^20 amplitudes: the cleanest
  // seconds-per-element sample the micro bench records. The density
  // matrix shares the coefficient (same dense per-element work), which
  // pins the DM-vs-trajectories crossover at 2^n = reps.
  const double apply_h_20_ns =
      benchmark_real_time_ns(micro_states, "BM_StateVector_ApplyH/20");
  if (apply_h_20_ns > 0) {
    const double per_element = apply_h_20_ns * 1e-9 / std::ldexp(1.0, 20);
    c.sv_seconds_per_element = per_element;
    c.dm_seconds_per_element = per_element;
    // SVD-dominated MPS splits keep their relative factor to the
    // streaming dense kernels.
    c.mps_seconds_per_element = 16.0 * per_element;
  }
  // Scheduler overhead = per-job gap between the queued and direct
  // paths of the same workload.
  const double direct = service_seconds_per_job(service, "session_direct");
  const double queued = service_seconds_per_job(service, "scheduler_1");
  if (direct > 0 && queued > direct) {
    c.job_overhead_seconds = queued - direct;
  }
  return CostModel(c);
}

CostModel CostModel::fitted_from_files(const std::string& micro_states_path,
                                       const std::string& service_path) {
  JsonValue micro;
  JsonValue service;
  try {
    const std::string text = slurp(micro_states_path);
    if (!text.empty()) micro = JsonValue::parse(text);
  } catch (const Error&) {
    // keep defaults
  }
  try {
    const std::string text = slurp(service_path);
    if (!text.empty()) service = JsonValue::parse(text);
  } catch (const Error&) {
    // keep defaults
  }
  return fitted(micro, service);
}

double CostModel::estimated_bond_dimension(const CircuitProfile& profile) {
  // χ can at most double per entangling layer and saturates at
  // 2^(n/2) (the Schmidt rank bound across the middle cut). The
  // entangling-gate density is the cheap proxy for layers the selector
  // already extracts.
  const double layers =
      std::min(profile.entangling_gates_per_qubit(),
               static_cast<double>(profile.num_qubits) / 2.0);
  // 2^32 caps the estimate for adversarial profiles: past that the
  // prediction is "absurdly expensive" either way and the double stays
  // well-behaved.
  return std::pow(2.0, std::min(layers, 32.0));
}

double CostModel::predict_seconds(const CircuitProfile& profile,
                                  std::uint64_t repetitions,
                                  BackendId backend) const {
  const double n = static_cast<double>(profile.num_qubits);
  const double ops = static_cast<double>(
      std::max<std::size_t>(profile.num_operations, 1));
  const double reps = static_cast<double>(repetitions);
  // Unitary circuits evolve once (dictionary-batched repetitions);
  // channel-bearing circuits re-evolve per trajectory on the pure-state
  // representations. The exact densitymatrix branches channels in a
  // single pass regardless of repetitions — that asymmetry is the whole
  // routing decision.
  const double passes = profile.has_channels ? std::max(reps, 1.0) : 1.0;
  const double shared = reps * coefficients_.sample_seconds_per_repetition +
                        coefficients_.job_overhead_seconds;
  switch (backend) {
    case BackendId::kStateVector:
      return passes * ops * std::ldexp(1.0, profile.num_qubits) *
                 coefficients_.sv_seconds_per_element +
             shared;
    case BackendId::kDensityMatrix:
      return ops * std::ldexp(1.0, 2 * profile.num_qubits) *
                 coefficients_.dm_seconds_per_element +
             shared;
    case BackendId::kStabilizer: {
      // Near-Clifford rotations branch per repetition
      // (sum-over-Cliffords); pure Clifford evolves once.
      const double ch_passes =
          profile.clifford_only ? 1.0 : std::max(reps, 1.0);
      const double packed_words = std::max(n * n / 64.0, 1.0);
      return ch_passes * ops * packed_words *
                 coefficients_.stabilizer_seconds_per_word +
             shared;
    }
    case BackendId::kMps: {
      const double chi = estimated_bond_dimension(profile);
      return passes * ops * n * chi * chi * chi *
                 coefficients_.mps_seconds_per_element +
             shared;
    }
    case BackendId::kAuto:
    case BackendId::kCustom:
      break;
  }
  detail::throw_error<ValueError>(
      "CostModel::predict_seconds needs a resolved builtin backend, got '",
      backend_id_name(backend), "'");
}

}  // namespace bgls::service

#include "service/client.h"

namespace bgls::service {

ServiceClient::ServiceClient(const Endpoint& endpoint)
    : socket_(connect_to(endpoint)) {}

JsonValue ServiceClient::roundtrip(const std::string& line) {
  return JsonValue::parse(roundtrip_text(line));
}

std::string ServiceClient::roundtrip_text(const std::string& line) {
  socket_.write_all(line);
  std::string response;
  if (!socket_.read_line(response)) {
    detail::throw_error<IoError>("server closed the connection");
  }
  return response;
}

void ServiceClient::require_ok(const JsonValue& response) {
  if (response.bool_or("ok", false)) return;
  throw ServiceError(response.string_or("code", "error"),
                     response.string_or("error", "request failed"));
}

std::string ServiceClient::extract_report(const JsonValue& response) {
  require_ok(response);
  const JsonValue* report = response.find("report");
  BGLS_REQUIRE(report != nullptr, "response carries no report");
  return report->as_string();
}

std::uint64_t ServiceClient::submit(const SubmitArgs& args) {
  const JsonValue response = roundtrip(submit_request_line(args));
  require_ok(response);
  return response.u64_or("job", 0);
}

JsonValue ServiceClient::status(std::uint64_t job) {
  const JsonValue response = roundtrip(job_request_line("status", job));
  require_ok(response);
  return response;
}

JsonValue ServiceClient::wait(std::uint64_t job, std::uint64_t timeout_ms) {
  return roundtrip(wait_request_line(job, timeout_ms));
}

std::string ServiceClient::result_report(std::uint64_t job) {
  return extract_report(roundtrip(job_request_line("result", job)));
}

std::string ServiceClient::wait_report(std::uint64_t job,
                                       std::uint64_t timeout_ms) {
  return extract_report(wait(job, timeout_ms));
}

bool ServiceClient::cancel(std::uint64_t job) {
  const JsonValue response = roundtrip(job_request_line("cancel", job));
  require_ok(response);
  return response.bool_or("cancelled", false);
}

std::string ServiceClient::stream(
    std::uint64_t job,
    const std::function<void(const JsonValue&)>& on_progress) {
  socket_.write_all(job_request_line("stream", job));
  std::string line;
  while (socket_.read_line(line)) {
    const JsonValue frame = JsonValue::parse(line);
    if (frame.string_or("type", "") == "progress") {
      if (on_progress) on_progress(frame);
      continue;
    }
    return extract_report(frame);
  }
  detail::throw_error<IoError>("server closed the stream mid-job");
}

JsonValue ServiceClient::stats() {
  const JsonValue response = roundtrip(op_request_line("stats"));
  require_ok(response);
  return response;
}

std::string ServiceClient::metrics_text() {
  const JsonValue response = roundtrip(op_request_line("metrics"));
  require_ok(response);
  const JsonValue* metrics = response.find("metrics");
  BGLS_REQUIRE(metrics != nullptr, "response carries no metrics text");
  return metrics->as_string();
}

JsonValue ServiceClient::trace(std::uint64_t job) {
  const JsonValue response = roundtrip(job_request_line("trace", job));
  require_ok(response);
  return response;
}

JsonValue ServiceClient::logs(const std::string& level, std::uint64_t trace_id,
                              std::uint64_t limit) {
  const JsonValue response =
      roundtrip(logs_request_line(level, trace_id, limit));
  require_ok(response);
  return response;
}

void ServiceClient::shutdown_server() {
  require_ok(roundtrip(op_request_line("shutdown")));
}

}  // namespace bgls::service

#include "service/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <optional>
#include <utility>

#include "util/fault.h"
#include "util/parse.h"

namespace bgls::service {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  detail::throw_error<IoError>(what, ": ", std::strerror(errno));
}

/// A sockaddr large enough for both families, plus its used length.
struct Address {
  sockaddr_storage storage{};
  socklen_t length = 0;
  int family = AF_UNSPEC;
};

Address resolve(const Endpoint& endpoint) {
  Address address;
  if (endpoint.is_unix()) {
    auto* sun = reinterpret_cast<sockaddr_un*>(&address.storage);
    sun->sun_family = AF_UNIX;
    BGLS_REQUIRE(endpoint.unix_path.size() < sizeof(sun->sun_path),
                 "unix socket path too long (", endpoint.unix_path.size(),
                 " bytes): ", endpoint.unix_path);
    std::memcpy(sun->sun_path, endpoint.unix_path.c_str(),
                endpoint.unix_path.size() + 1);
    address.length = static_cast<socklen_t>(
        offsetof(sockaddr_un, sun_path) + endpoint.unix_path.size() + 1);
    address.family = AF_UNIX;
    return address;
  }
  auto* sin = reinterpret_cast<sockaddr_in*>(&address.storage);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<std::uint16_t>(endpoint.port));
  const std::string host = endpoint.host.empty() ? "127.0.0.1" : endpoint.host;
  if (inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    detail::throw_error<IoError>("invalid IPv4 address '", host,
                                 "' (hostnames are not resolved; use a "
                                 "numeric address)");
  }
  address.length = sizeof(sockaddr_in);
  address.family = AF_INET;
  return address;
}

}  // namespace

Endpoint Endpoint::unix_socket(std::string path) {
  Endpoint endpoint;
  endpoint.unix_path = std::move(path);
  return endpoint;
}

Endpoint Endpoint::tcp(std::string host, int port) {
  Endpoint endpoint;
  endpoint.host = std::move(host);
  endpoint.port = port;
  return endpoint;
}

Endpoint Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    BGLS_REQUIRE(!path.empty(), "empty unix socket path in '", spec, "'");
    return unix_socket(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    BGLS_REQUIRE(colon != std::string::npos,
                 "expected tcp:host:port (or tcp::port), got '", spec, "'");
    const std::string port_text = rest.substr(colon + 1);
    // Checked parse (util/parse.h): the old strtol path capped a
    // 30-digit port at LONG_MAX instead of rejecting it outright.
    const std::optional<std::uint64_t> port =
        util::try_parse_u64(port_text);
    BGLS_REQUIRE(port.has_value() && *port <= 65535, "invalid port in '",
                 spec, "'");
    return tcp(rest.substr(0, colon), static_cast<int>(*port));
  }
  detail::throw_error<ValueError>(
      "endpoint must be 'unix:<path>' or 'tcp:<host>:<port>', got '", spec,
      "'");
}

std::string Endpoint::to_string() const {
  if (is_unix()) return "unix:" + unix_path;
  return "tcp:" + (host.empty() ? std::string("127.0.0.1") : host) + ":" +
         std::to_string(port);
}

// --- Socket ---------------------------------------------------------------

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Socket::write_all(std::string_view data) {
  BGLS_REQUIRE(valid(), "write on a closed socket");
  std::size_t written = 0;
  while (written < data.size()) {
    // Fault point "socket_send": degrade to one-byte writes so short
    // sends (and the retry loop around them) get exercised.
    const std::size_t chunk_len =
        fault::should_fail("socket_send") ? 1 : data.size() - written;
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the process with SIGPIPE.
    const ssize_t n =
        ::send(fd_, data.data() + written, chunk_len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket write failed");
    }
    written += static_cast<std::size_t>(n);
  }
}

bool Socket::read_line(std::string& line) {
  BGLS_REQUIRE(valid(), "read on a closed socket");
  while (true) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    // Fault point "socket_recv": behave as if the read was interrupted
    // (EINTR path) — the loop must simply retry.
    if (fault::should_fail("socket_recv")) continue;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("socket read failed");
    }
    if (n == 0) {
      // EOF: surface a trailing unterminated line once, then report
      // end of stream.
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

// --- ServerSocket ---------------------------------------------------------

ServerSocket::~ServerSocket() {
  // Runs after any accepting thread has been joined (see header): the
  // descriptors can be released without racing a poll() on them.
  if (fd_ >= 0) ::close(fd_);
  if (wake_read_ >= 0) ::close(wake_read_);
  if (wake_write_ >= 0) ::close(wake_write_);
  if (fd_ >= 0 && endpoint_.is_unix()) {
    ::unlink(endpoint_.unix_path.c_str());
  }
}

void ServerSocket::listen_on(const Endpoint& endpoint) {
  BGLS_REQUIRE(fd_ < 0, "ServerSocket is already listening");
  const Address address = resolve(endpoint);
  endpoint_ = endpoint;
  fd_ = ::socket(address.family, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket() failed");

  if (endpoint.is_unix()) {
    // A previous daemon's stale socket file would make bind fail.
    ::unlink(endpoint.unix_path.c_str());
  } else {
    const int enable = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&address.storage),
             address.length) != 0) {
    throw_errno("cannot bind " + endpoint.to_string());
  }
  if (::listen(fd_, SOMAXCONN) != 0) {
    throw_errno("listen() failed on " + endpoint.to_string());
  }
  if (!endpoint.is_unix()) {
    // Read back the ephemeral port so clients can be pointed at it.
    sockaddr_in bound{};
    socklen_t length = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &length) ==
        0) {
      endpoint_.port = ntohs(bound.sin_port);
    }
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) throw_errno("pipe() failed");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
}

Socket ServerSocket::accept() {
  BGLS_REQUIRE(fd_ >= 0, "accept() before listen_on()");
  while (!closed_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll() failed");
    }
    if (fds[1].revents != 0) return Socket{};  // close() woke us
    if (fds[0].revents == 0) continue;
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return Socket{};  // listening socket was torn down
    }
    return Socket{client};
  }
  return Socket{};
}

void ServerSocket::close() noexcept {
  closed_.store(true, std::memory_order_release);
  if (wake_write_ >= 0) {
    const char byte = 'x';
    // Wakes the poll(); the descriptor itself is released by the
    // destructor, after the accepting thread joined.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_, &byte, 1);
  }
}

Socket connect_to(const Endpoint& endpoint) {
  const Address address = resolve(endpoint);
  const int fd = ::socket(address.family, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address.storage),
                address.length) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("cannot connect to " + endpoint.to_string());
  }
  return Socket{fd};
}

}  // namespace bgls::service

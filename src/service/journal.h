/// \file journal.h
/// Write-ahead scheduler journal: the daemon's crash-safety log.
///
/// The daemon (service/daemon.h, `bgls_serve --journal <path>`) records
/// every externally visible scheduling event — submit, terminal state,
/// checkpoint, eviction — as one CRC-framed ndjson record, fsync'd
/// before the operation is acknowledged to the client. On startup the
/// journal is replayed: terminal jobs answer result/status queries
/// without re-running, incomplete jobs re-enqueue from their last
/// checkpoint (or from scratch — determinism makes a re-run
/// byte-identical), and the log is compacted to the live set.
///
/// Framing: each line is `{"crc":<crc32 of body>,"rec":<body>}` where
/// the body is itself a compact JSON object. A torn final record — the
/// kill -9 case — fails the CRC (or does not parse) and is skipped;
/// because a record is written and fsync'd *before* its operation is
/// acknowledged, a lost or torn record can only correspond to an
/// operation no client saw succeed.
///
/// Fault injection: the "journal_write" point (util/fault.h) tears an
/// append — a partial prefix hits the file, no fsync, JournalError is
/// thrown — so tests exercise exactly the torn-write recovery path.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.h"
#include "util/json_parser.h"

namespace bgls::service {

/// Thrown when a journal append or rewrite fails (disk error, injected
/// fault). Deliberately NOT an IoError: the daemon treats IoError as
/// connection-fatal, while a journal failure is reported to the client
/// as a retryable `journal_error` response.
class JournalError : public Error {
 public:
  using Error::Error;
};

/// Append-only CRC-framed ndjson log with fsync'd, mutex-serialized
/// appends.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens (creating if needed) `path` for appending. Throws
  /// JournalError on failure.
  void open(const std::string& path);

  /// Frames, appends, and fsyncs one record body (a complete JSON
  /// object, no trailing newline). Durable once this returns. Throws
  /// JournalError on failure; after a torn write the next append
  /// starts on a fresh line, so one tear never corrupts its successor.
  void append(const std::string& record_json);

  /// fsyncs any buffered state (appends are already durable; this is a
  /// barrier for shutdown).
  void flush();

  void close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Records durably appended through this handle.
  [[nodiscard]] std::uint64_t records_written() const;

  /// Reads every intact record body from `path` in order, skipping
  /// empty lines and torn/CRC-mismatched/unparseable records (counted
  /// into `*skipped` when non-null). A missing file yields an empty
  /// vector. Throws JournalError only on read errors.
  [[nodiscard]] static std::vector<JsonValue> replay_file(
      const std::string& path, std::size_t* skipped = nullptr);

  /// Same recovery walk over an already-open stream — the unit the
  /// fuzz harness (tests/fuzz/fuzz_journal.cpp) drives with arbitrary
  /// bytes, and replay_file's implementation. Never throws on content:
  /// any malformed line is skipped, not fatal.
  [[nodiscard]] static std::vector<JsonValue> replay_stream(
      std::istream& in, std::size_t* skipped = nullptr);

  /// Atomically rewrites `path` to contain exactly `record_bodies`
  /// (re-framed), via a temp file + rename. Throws JournalError on
  /// failure.
  static void compact_file(const std::string& path,
                           const std::vector<std::string>& record_bodies);

  /// CRC-32 (IEEE 802.3, reflected) of `text` — the frame checksum.
  [[nodiscard]] static std::uint32_t crc32(std::string_view text);

 private:
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::string path_;
  std::uint64_t records_written_ = 0;
  /// Set after a torn append: the next record is preceded by a newline
  /// so the torn prefix stays confined to its own (invalid) line.
  bool needs_newline_ = false;
};

/// Records one replay duration into the `bgls_journal_replay_seconds`
/// histogram (called by the daemon after start-up replay).
void record_journal_replay_seconds(double seconds);

}  // namespace bgls::service

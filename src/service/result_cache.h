/// \file result_cache.h
/// Deterministic result cache for the sampling service.
///
/// BGLS sampling is a pure function of (circuit, seed, repetitions,
/// rng streams, backend, knobs) — bit-identical on every run and every
/// thread count (the determinism contract every tier-1 suite pins).
/// That makes results perfectly cacheable: the million-user case is
/// mostly hot circuits, and a repeat submission can be answered with a
/// byte-identical report for the cost of a map lookup.
///
/// The key is the *full canonical serialization* of the
/// result-determining request fields (not just a hash of them): circuit
/// structure down to bit-exact gate parameters, Kraus operators and
/// moment boundaries, plus seed/repetitions/streams/backend/knobs.
/// Storing the serialization itself makes collisions impossible — the
/// byte-identical-report contract must not hinge on a hash function.
/// Scheduling-only fields (threads, priority, tenant, deadline) are
/// excluded: they never change the sampled records.
///
/// Not cacheable (key_for returns nullopt): requests with a resume
/// checkpoint, caller-supplied checkpoint capture, or streaming
/// progress (a cache hit emits no intermediate updates, so serving one
/// would change observable behavior), and circuits with unresolved
/// symbolic parameters.
///
/// Bounded LRU: max_entries and an approximate max_total_bytes, oldest
/// hits evicted first. Thread-safe.

#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>  // bgls-lint: allow(unordered-serialization)

#include "api/run_types.h"

namespace bgls::service {

/// Cache bounds. Entry bytes are estimated from the stored measurement
/// records (the dominant term at large repetition counts) plus the key.
struct ResultCacheOptions {
  std::size_t max_entries = 1024;
  std::size_t max_total_bytes = 256ull * 1024 * 1024;
};

/// LRU map from canonical request serialization to the finished
/// RunResult. Entries are immutable shared_ptrs — a hit hands back the
/// original result object.
class ResultCache {
 public:
  explicit ResultCache(ResultCacheOptions options = {});

  /// Canonical serialization of the result-determining fields of
  /// `request`, or nullopt when the request must not be cached (see
  /// file comment).
  [[nodiscard]] static std::optional<std::string> key_for(
      const RunRequest& request);

  /// The cached result for `key`, or null. Counts a hit or miss.
  [[nodiscard]] std::shared_ptr<const RunResult> lookup(
      const std::string& key);

  /// Stores `result` under `key` (no-op when already present — the
  /// deterministic contract makes concurrent duplicates identical) and
  /// evicts least-recently-used entries past the bounds.
  void insert(const std::string& key,
              std::shared_ptr<const RunResult> result);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t bytes = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Entry {
    std::shared_ptr<const RunResult> result;
    std::size_t bytes = 0;
    /// Position in lru_ (front = most recently used).
    std::list<std::string>::iterator lru_position;
  };

  void evict_past_bounds_locked();

  ResultCacheOptions options_;
  mutable std::mutex mutex_;
  std::list<std::string> lru_;
  // Never iterated — every access is a by-key find/emplace/erase, and
  // eviction order comes from the ordered lru_ list above, so hash
  // order cannot reach serialized bytes.
  // bgls-lint: allow(unordered-serialization)
  std::unordered_map<std::string, Entry> entries_;
  std::size_t total_bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace bgls::service

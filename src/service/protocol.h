/// \file protocol.h
/// The bgls service wire protocol, shared by the `bgls_serve` daemon,
/// the `bgls_client` tool/library, and the tests.
///
/// Transport: newline-delimited JSON (ndjson) over a Unix-domain or TCP
/// stream socket — one request object per line, one response object per
/// line (the `stream` op additionally emits one progress object per
/// line before its final response). Requests carry an "op" field:
///
///   {"op":"submit","qasm":"...", "reps":N, "seed":N, "backend":"auto",
///    "threads":N, "streams":N, "optimize":false, "no_batch":false,
///    "priority":N, "tenant":"...", "deadline_ms":N, "progress_every":N}
///   {"op":"status","job":N}        {"op":"cancel","job":N}
///   {"op":"wait","job":N,"timeout_ms":N}
///   {"op":"result","job":N}        {"op":"stream","job":N}
///   {"op":"stats"}                 {"op":"shutdown"}
///   {"op":"metrics"}   — Prometheus text exposition of the telemetry
///                        registry (obs/), escaped in "metrics"
///   {"op":"trace","job":N}  — the job's span tree: "trace_id" plus a
///                        "spans" array of {id,parent,name,index,
///                        seconds}. A fleet front stitches its own
///                        placement/proxy spans with the worker's.
///   {"op":"logs","level":"warn","trace_id":N,"limit":N} — tails the
///                        server's structured-log ring (obs/log.h) as
///                        a "lines" array of ndjson strings; level and
///                        trace_id filter, limit caps (default 100).
///
/// Submit additionally accepts optional "trace_id"/"parent_span_id"
/// fields — the cross-process trace context. The job's spans derive
/// their IDs from trace_id and hang under parent_span_id, so a caller
/// (fleet front, client) can stitch the worker's spans into its own
/// trace. Observation-only: context never changes sampled output or
/// result-cache identity.
///
/// Every response carries "ok" (bool); failures add "code" (a stable
/// slug: parse_error/unknown_op/unknown_job/queue_full/not_done/
/// cancelled/timeout/failed) and "error" (a human-readable message).
/// `result`/`wait` responses embed the canonical bgls_run report
/// (service/report.h) as an escaped string in "report", so clients can
/// reproduce the CLI's byte-exact output. Job lifecycle states on the
/// wire are job_state_name() strings: queued → running → done | failed
/// | cancelled | timeout.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "api/run_types.h"
#include "core/progress.h"
#include "obs/trace.h"
#include "util/json_parser.h"
#include "util/json_writer.h"

namespace bgls::service {

/// Client-side submission knobs (the JSON fields of the submit op).
struct SubmitArgs {
  std::string qasm;
  std::string backend = "auto";
  std::uint64_t repetitions = 1024;
  std::uint64_t seed = 0;
  int threads = 1;
  std::uint64_t streams = 16;
  bool optimize = false;
  /// Disable dictionary batching (per-trajectory sampling): the knob
  /// that makes unitary circuits stream partial histograms and react
  /// to cancellation at repetition granularity.
  bool no_batch = false;
  int priority = 0;
  /// Owning tenant for quotas and weighted-fair scheduling; "" = the
  /// anonymous default tenant (the field is omitted from the wire).
  std::string tenant;
  std::uint64_t deadline_ms = 0;
  std::uint64_t progress_every = 0;
  /// Cross-process trace context (0 = none; fields omitted from the
  /// wire). parent_span_id only travels alongside a nonzero trace_id.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;
};

/// Serializes a submit request as one ndjson line (with trailing \n).
[[nodiscard]] std::string submit_request_line(const SubmitArgs& args);

/// One-field request lines ({"op":...,"job":...}).
[[nodiscard]] std::string job_request_line(const std::string& op,
                                           std::uint64_t job);
[[nodiscard]] std::string wait_request_line(std::uint64_t job,
                                            std::uint64_t timeout_ms);
[[nodiscard]] std::string op_request_line(const std::string& op);
[[nodiscard]] std::string logs_request_line(const std::string& level,
                                            std::uint64_t trace_id,
                                            std::uint64_t limit);

/// Daemon-side: builds the RunRequest for a parsed submit message
/// (parses the embedded QASM). Throws ParseError/ValueError with the
/// offending field.
[[nodiscard]] RunRequest parse_submit(const JsonValue& message);

/// Serializes a ProgressUpdate's histograms as an object keyed by
/// measurement key, each value an object of decimal-bitstring → count.
void write_progress_histograms(JsonWriter& json, const ProgressUpdate& update);

/// Serializes spans as an array value (caller writes the "spans" key):
/// [{"id":...,"parent":...,"name":"...","index":...,"seconds":...}].
/// IDs are u64 — JsonWriter/JsonValue round-trip them exactly.
void write_spans(JsonWriter& json, const std::vector<obs::SpanRecord>& spans);

/// Parses a trace response's "spans" array (absent → empty).
[[nodiscard]] std::vector<obs::SpanRecord> parse_spans(
    const JsonValue& response);

}  // namespace bgls::service

/// \file scheduler.h
/// JobScheduler — the long-lived sampling service's work queue.
///
/// The Session facade (api/session.h) runs one request at a time; a
/// *service* multiplexes many heterogeneous requests from many clients
/// against bounded resources. The scheduler adds exactly the missing
/// layer, the shape qsim-style deployments use for a persistent
/// simulator process:
///
///  - a priority queue of RunRequest jobs (higher priority first, ties
///    by weighted-fair virtual time, then FIFO) drained by a fixed set
///    of runner threads; the sampling itself still fans out on the
///    shared EngineContext pool through the Session, so one big job
///    saturates the machine while small ones queue behind it;
///  - multi-tenancy: every request carries a tenant name; tenants get
///    weighted-fair scheduling (virtual time charged at predicted cost
///    over weight, so a 2:1 weight ratio converges to a 2:1 share of
///    completed work under saturation) plus per-tenant queued/running
///    caps;
///  - admission control: submissions beyond max_queue_depth (queued
///    plus retry-delayed jobs) are rejected with QueueFullError; over
///    a tenant's quota with TenantQuotaError; over the predicted-cost
///    budgets (service/cost.h) with CostBudgetError — a service sheds
///    load at the door instead of accumulating unbounded work;
///  - a deterministic result cache (service/result_cache.h, opt-in):
///    repeat submissions of a cacheable request are answered as
///    instantly terminal jobs holding the original result — reports
///    stay byte-identical without re-sampling;
///  - per-job cooperative cancellation and wall-clock deadlines
///    (util/cancellation.h): cancel() aborts a queued job instantly and
///    a running one within a bounded number of gate/shard steps;
///    deadlines count from submission, so a job that waited out its
///    budget in the queue times out without sampling;
///  - streaming partial histograms: every job records its
///    ProgressUpdate sequence (core/progress.h), replayable from any
///    offset — the daemon's poll/stream endpoints read it.
///
/// Aborted or failed jobs never corrupt the scheduler or the shared
/// pool: a later identical submission returns bit-identical results
/// (pinned by tests/test_scheduler.cpp).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/progress.h"
#include "obs/trace.h"
#include "service/cost.h"
#include "service/result_cache.h"
#include "util/cancellation.h"
#include "util/error.h"

namespace bgls::service {

/// Thrown by submit() when admission control rejects the job (queued
/// plus retry-delayed jobs at max_queue_depth).
class QueueFullError : public Error {
 public:
  using Error::Error;
};

/// Thrown by submit() when the request's tenant is at its queued cap.
class TenantQuotaError : public Error {
 public:
  using Error::Error;
};

/// Lifecycle of a job. Queued/Running are transient; the other four are
/// terminal.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kTimedOut,
};

/// Lowercase wire name ("queued", "running", "done", "failed",
/// "cancelled", "timeout").
[[nodiscard]] std::string_view job_state_name(JobState state);

/// True for the four end states.
[[nodiscard]] bool is_terminal(JobState state);

/// Snapshot of one job, returned by info()/wait().
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  int priority = 0;
  /// Owning tenant ("" = the anonymous default tenant).
  std::string tenant;
  /// Answered from the result cache without sampling (instantly
  /// terminal; start_order stays 0).
  bool from_cache = false;
  /// CostModel estimate at admission, seconds (0 when no estimate was
  /// possible — custom backends have no closed form).
  double predicted_seconds = 0.0;
  /// What went wrong (kFailed), or the cancellation/timeout message.
  std::string error;
  /// Streaming progress: repetitions covered by the latest update and
  /// the number of updates recorded so far.
  std::uint64_t completed_repetitions = 0;
  std::uint64_t total_repetitions = 0;
  std::size_t progress_updates = 0;
  /// The final result (kDone only).
  std::shared_ptr<const RunResult> result;
  /// Queue wait and execution wall time, seconds (so far, for live
  /// jobs).
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// 1-based order in which the job started running; 0 = never started
  /// (tests pin priority ordering with it).
  std::uint64_t start_order = 0;
  /// Transient-failure retries consumed so far (SchedulerOptions::
  /// max_retries bounds them).
  std::uint64_t retries = 0;
  /// The job's telemetry trace (obs/trace.h): queue/run spans from the
  /// scheduler plus shard/phase spans from the layers below, with span
  /// IDs deterministically derived from the job id. Null when telemetry
  /// is compiled out.
  std::shared_ptr<const obs::Trace> trace;
};

/// Aggregate counters for the stats endpoint. The per-state counters
/// (submitted/rejected/completed/...) are *monotonic over the
/// scheduler's lifetime*: a job's terminal state is folded in at the
/// terminal transition, before retention eviction can forget the job,
/// so totals survive max_retained_jobs pruning.
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  /// Terminal jobs forgotten by the retention bound (their ids became
  /// unknown; the counters above still include them).
  std::uint64_t evicted = 0;
  /// Crash-safety counters: transient-failure retries, checkpoint-and-
  /// preempt evictions of running jobs, and runs that started from a
  /// checkpoint (retry resumes, preemption resumes, journal replays).
  std::uint64_t retried = 0;
  std::uint64_t preempted = 0;
  std::uint64_t resumed = 0;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  /// Submissions answered from the result cache (included in
  /// submitted/completed).
  std::uint64_t cache_hits = 0;
  /// Completed jobs per executing backend name — the routing decisions
  /// (RunStats::selection_reason carries the per-job why).
  std::map<std::string, std::uint64_t> completed_per_backend;
  /// Completed jobs (cache hits included) per tenant name.
  std::map<std::string, std::uint64_t> completed_per_tenant;
};

/// Per-tenant scheduling quota.
struct TenantQuota {
  /// Weighted-fair share: a tenant's virtual time advances by
  /// predicted-cost/weight per admitted job, so a weight-2 tenant gets
  /// twice the completed work of a weight-1 tenant under saturation.
  double weight = 1.0;
  /// Cap on the tenant's queued (incl. retry-delayed) jobs; 0 = only
  /// the global max_queue_depth applies.
  std::size_t max_queued = 0;
  /// Cap on the tenant's concurrently running jobs; 0 = only
  /// max_concurrent_jobs applies.
  std::size_t max_running = 0;
};

/// Construction knobs.
struct SchedulerOptions {
  /// Dedicated job-runner threads (concurrent jobs). Each job's
  /// sampling fans out on the shared EngineContext pool via the
  /// Session, so this bounds *jobs* in flight, not threads used.
  int max_concurrent_jobs = 1;
  /// Admission bound on queued (not yet running) jobs, counting both
  /// the ready heap and retry-backoff jobs waiting in delayed_.
  std::size_t max_queue_depth = 64;
  /// Explicit per-tenant quotas; tenants not listed get default_quota.
  std::map<std::string, TenantQuota> tenant_quotas;
  /// Quota for tenants without an explicit entry (including the
  /// anonymous "" tenant).
  TenantQuota default_quota{};
  /// Cost-aware admission budgets, applied to the CostModel estimate
  /// (the Session's selector model, so routing and admission agree).
  /// 0 disables the respective budget. Jobs whose backend has no
  /// closed-form cost (custom backends) bypass both.
  double max_job_seconds = 0.0;
  /// Cap on the summed predicted seconds of queued + delayed work; a
  /// rejection here is retryable — the backlog drains.
  double max_queue_seconds = 0.0;
  /// Deterministic result cache; null = off. Shareable between
  /// schedulers (it is internally locked).
  std::shared_ptr<ResultCache> result_cache;
  /// Retention bound on *terminal* jobs: when more than this many
  /// finished/aborted jobs are held, the oldest-finished are evicted
  /// (their id becomes unknown; results and progress must be fetched
  /// before then). Keeps a long-lived daemon's memory bounded — live
  /// (queued/running) jobs are never evicted.
  std::size_t max_retained_jobs = 1024;
  /// Forwarded to the owned Session.
  SessionOptions session{};
  /// Checkpoint cadence installed on every job (repetitions between
  /// resumable snapshots; 0 = off). A job's own checkpoint cadence, if
  /// set, wins. Checkpoints feed the retry/preemption resume path and
  /// the on_checkpoint journal hook.
  std::uint64_t checkpoint_every = 0;
  /// Transiently failed jobs (anything but invalid-request errors) are
  /// re-queued up to this many times, resuming from their latest
  /// checkpoint, with exponential backoff: the k-th retry waits
  /// backoff_base_ms * 2^(k-1) plus deterministic jitter in
  /// [0, backoff_base_ms).
  int max_retries = 0;
  std::uint64_t backoff_base_ms = 100;
  /// Checkpoint-and-preempt: when every runner is busy and a submission
  /// outranks a running job, the lowest-priority running job is
  /// cancelled mid-run and re-queued to resume from its latest
  /// checkpoint once a runner frees up.
  bool preempt_lower_priority = false;
  /// Event hooks for write-ahead journaling (service/journal.h). All
  /// are optional, invoked outside the scheduler lock (on_evict inside
  /// it — it must not call back into the scheduler), and exceptions
  /// they throw are swallowed: losing a journal record only means the
  /// affected job replays more work after a crash (determinism makes
  /// the re-run byte-identical). on_terminal is NOT invoked for jobs
  /// cancelled by scheduler shutdown — they stay incomplete in the
  /// journal so a restart resumes them.
  std::function<void(const JobInfo&)> on_terminal;
  std::function<void(std::uint64_t)> on_evict;
  std::function<void(std::uint64_t, std::shared_ptr<const RunCheckpoint>)>
      on_checkpoint;
};

/// Priority work queue over a Session (see file comment). Thread-safe:
/// every public method may be called from any thread.
class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {});

  /// Cancels every queued and running job and joins the runners.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues `request` and returns its job id. Uses request.priority,
  /// arms request.deadline_ms on the job's cancellation token *now*
  /// (queue wait counts), and records request.progress updates for
  /// progress_since() — a caller-supplied progress sink still receives
  /// every update. Throws QueueFullError when the queue is at
  /// max_queue_depth.
  std::uint64_t submit(RunRequest request);

  /// submit() variant for journal replay: enqueues `request` under the
  /// id it had in the journaled previous life (so clients polling that
  /// id keep working) and advances the id counter past it. Bypasses
  /// admission control — replayed jobs were already admitted once.
  std::uint64_t resubmit(RunRequest request, std::uint64_t forced_id);

  /// Ensures future job ids start after `max_id` (journal replay calls
  /// this for terminal jobs it answers from memory without
  /// resubmitting).
  void reserve_ids_through(std::uint64_t max_id);

  /// Requests cancellation: a queued job is cancelled immediately, a
  /// running one within a bounded number of gate/shard steps. Returns
  /// false for unknown ids and jobs already in a terminal state.
  bool cancel(std::uint64_t id);

  /// Snapshot of a job; throws ValueError for unknown ids.
  [[nodiscard]] JobInfo info(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state (or `timeout`
  /// passes) and returns the snapshot.
  JobInfo wait(std::uint64_t id,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds::max()) const;

  /// The job's recorded progress updates starting at index `since`
  /// (replay cursor for streaming endpoints).
  [[nodiscard]] std::vector<ProgressUpdate> progress_since(
      std::uint64_t id, std::size_t since) const;

  /// Blocks until the job has recorded more than `since` updates or
  /// reached a terminal state (or `timeout` passed). Returns true when
  /// either happened — the streaming endpoint's poll primitive.
  bool wait_progress(std::uint64_t id, std::size_t since,
                     std::chrono::milliseconds timeout) const;

  /// Aggregate counters.
  [[nodiscard]] SchedulerStats stats() const;

  /// The session jobs run through (for direct, unqueued runs — the
  /// daemon's synchronous endpoints — and for tests comparing results).
  [[nodiscard]] Session& session() { return session_; }

  /// Smallest job id still known (ids below it may have been evicted
  /// by the retention bound). The daemon prunes its per-job side
  /// tables with this.
  [[nodiscard]] std::uint64_t min_retained_id() const;

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;

  /// Per-tenant scheduling state (guarded by mutex_).
  struct TenantState {
    TenantQuota quota;
    /// Weighted-fair virtual time: the finish tag of the tenant's most
    /// recently admitted job.
    double vtime = 0.0;
    std::size_t queued = 0;   // jobs in queue_ or delayed_
    std::size_t running = 0;  // jobs currently executing
    /// Process-wide per-tenant series, registered on first sight.
    obs::Counter submitted_metric;
    obs::Counter completed_metric;
  };

  /// Dispatch order: higher priority first, then lower virtual time
  /// (weighted-fair), then FIFO. Returns "a is worse than b".
  static bool dispatch_less(const JobPtr& a, const JobPtr& b);

  std::uint64_t submit_impl(RunRequest request, std::uint64_t forced_id);
  /// CostModel estimate for `request` via the session's selector;
  /// negative when no estimate is possible (custom backend, unrunnable
  /// circuit — those fail later with their real error).
  [[nodiscard]] double estimate_seconds(const RunRequest& request) const;
  /// The tenant's state, created (with its quota and metric series
  /// registered) on first sight.
  TenantState& tenant_locked(const std::string& tenant);
  /// Pops the best dispatchable job — per-tenant running caps respected
  /// — or null when nothing is eligible.
  JobPtr take_next_locked();
  void runner_loop();
  /// Executes one dequeued job outside the lock.
  void run_job(const JobPtr& job);
  /// Re-queues a preempted or transiently failed job to resume from its
  /// latest checkpoint; jobs with a future `ready_at` wait in delayed_.
  void requeue_locked(const JobPtr& job,
                      std::chrono::steady_clock::time_point ready_at,
                      bool fresh_token);
  /// Moves delayed_ jobs whose backoff has elapsed into the ready heap.
  void promote_delayed_locked();
  /// Checkpoint-and-preempts the lowest-priority running job when
  /// `incoming` outranks it and no runner is free.
  void maybe_preempt_locked(const JobPtr& incoming);
  /// Terminal bookkeeping for a job that ran (counters, metrics,
  /// eviction).
  void finish_job_locked(const JobPtr& job, JobState state, std::string error,
                         std::shared_ptr<RunResult> result);
  /// Records a terminal transition and evicts the oldest terminal jobs
  /// beyond max_retained_jobs.
  void note_terminal_locked(const JobPtr& job);
  [[nodiscard]] JobInfo snapshot_locked(const Job& job) const;
  [[nodiscard]] JobPtr find_locked(std::uint64_t id) const;

  SchedulerOptions options_;
  Session session_;

  mutable std::mutex mutex_;
  /// Signals runners about new work or shutdown.
  std::condition_variable work_available_;
  /// Broadcast on every job state change and progress update (wait /
  /// wait_progress).
  mutable std::condition_variable job_changed_;
  std::map<std::uint64_t, JobPtr> jobs_;
  /// Ready jobs; take_next_locked scans for the dispatch_less-best
  /// eligible entry (admission bounds the depth, so O(depth) per
  /// dispatch is cheap and keeps per-tenant eligibility exact).
  std::vector<JobPtr> queue_;
  /// Retried jobs waiting out their backoff (ready_at in the future).
  std::vector<JobPtr> delayed_;
  /// Weighted-fair bookkeeping (see TenantState).
  std::map<std::string, TenantState> tenants_;
  double global_vtime_ = 0.0;
  /// Summed predicted seconds of jobs in queue_ + delayed_ (the
  /// max_queue_seconds admission budget).
  double predicted_backlog_seconds_ = 0.0;
  /// Terminal job ids in completion order — the eviction queue.
  std::deque<std::uint64_t> terminal_order_;
  std::vector<std::thread> runners_;
  SchedulerStats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_start_order_ = 1;
  bool stopping_ = false;
};

}  // namespace bgls::service

/// \file scheduler.h
/// JobScheduler — the long-lived sampling service's work queue.
///
/// The Session facade (api/session.h) runs one request at a time; a
/// *service* multiplexes many heterogeneous requests from many clients
/// against bounded resources. The scheduler adds exactly the missing
/// layer, the shape qsim-style deployments use for a persistent
/// simulator process:
///
///  - a priority queue of RunRequest jobs (higher priority first, ties
///    FIFO) drained by a fixed set of runner threads; the sampling
///    itself still fans out on the shared EngineContext pool through
///    the Session, so one big job saturates the machine while small
///    ones queue behind it;
///  - admission control: submissions beyond max_queue_depth are
///    rejected with QueueFullError carrying the reason — a service
///    sheds load at the door instead of accumulating unbounded work;
///  - per-job cooperative cancellation and wall-clock deadlines
///    (util/cancellation.h): cancel() aborts a queued job instantly and
///    a running one within a bounded number of gate/shard steps;
///    deadlines count from submission, so a job that waited out its
///    budget in the queue times out without sampling;
///  - streaming partial histograms: every job records its
///    ProgressUpdate sequence (core/progress.h), replayable from any
///    offset — the daemon's poll/stream endpoints read it.
///
/// Aborted or failed jobs never corrupt the scheduler or the shared
/// pool: a later identical submission returns bit-identical results
/// (pinned by tests/test_scheduler.cpp).

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "api/session.h"
#include "core/progress.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/error.h"

namespace bgls::service {

/// Thrown by submit() when admission control rejects the job.
class QueueFullError : public Error {
 public:
  using Error::Error;
};

/// Lifecycle of a job. Queued/Running are transient; the other four are
/// terminal.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
  kTimedOut,
};

/// Lowercase wire name ("queued", "running", "done", "failed",
/// "cancelled", "timeout").
[[nodiscard]] std::string_view job_state_name(JobState state);

/// True for the four end states.
[[nodiscard]] bool is_terminal(JobState state);

/// Snapshot of one job, returned by info()/wait().
struct JobInfo {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  int priority = 0;
  /// What went wrong (kFailed), or the cancellation/timeout message.
  std::string error;
  /// Streaming progress: repetitions covered by the latest update and
  /// the number of updates recorded so far.
  std::uint64_t completed_repetitions = 0;
  std::uint64_t total_repetitions = 0;
  std::size_t progress_updates = 0;
  /// The final result (kDone only).
  std::shared_ptr<const RunResult> result;
  /// Queue wait and execution wall time, seconds (so far, for live
  /// jobs).
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// 1-based order in which the job started running; 0 = never started
  /// (tests pin priority ordering with it).
  std::uint64_t start_order = 0;
  /// The job's telemetry trace (obs/trace.h): queue/run spans from the
  /// scheduler plus shard/phase spans from the layers below, with span
  /// IDs deterministically derived from the job id. Null when telemetry
  /// is compiled out.
  std::shared_ptr<const obs::Trace> trace;
};

/// Aggregate counters for the stats endpoint. The per-state counters
/// (submitted/rejected/completed/...) are *monotonic over the
/// scheduler's lifetime*: a job's terminal state is folded in at the
/// terminal transition, before retention eviction can forget the job,
/// so totals survive max_retained_jobs pruning.
struct SchedulerStats {
  std::uint64_t submitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t timed_out = 0;
  /// Terminal jobs forgotten by the retention bound (their ids became
  /// unknown; the counters above still include them).
  std::uint64_t evicted = 0;
  std::size_t queue_depth = 0;
  std::size_t running = 0;
  /// Completed jobs per executing backend name — the routing decisions
  /// (RunStats::selection_reason carries the per-job why).
  std::map<std::string, std::uint64_t> completed_per_backend;
};

/// Construction knobs.
struct SchedulerOptions {
  /// Dedicated job-runner threads (concurrent jobs). Each job's
  /// sampling fans out on the shared EngineContext pool via the
  /// Session, so this bounds *jobs* in flight, not threads used.
  int max_concurrent_jobs = 1;
  /// Admission bound on queued (not yet running) jobs.
  std::size_t max_queue_depth = 64;
  /// Retention bound on *terminal* jobs: when more than this many
  /// finished/aborted jobs are held, the oldest-finished are evicted
  /// (their id becomes unknown; results and progress must be fetched
  /// before then). Keeps a long-lived daemon's memory bounded — live
  /// (queued/running) jobs are never evicted.
  std::size_t max_retained_jobs = 1024;
  /// Forwarded to the owned Session.
  SessionOptions session{};
};

/// Priority work queue over a Session (see file comment). Thread-safe:
/// every public method may be called from any thread.
class JobScheduler {
 public:
  explicit JobScheduler(SchedulerOptions options = {});

  /// Cancels every queued and running job and joins the runners.
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Enqueues `request` and returns its job id. Uses request.priority,
  /// arms request.deadline_ms on the job's cancellation token *now*
  /// (queue wait counts), and records request.progress updates for
  /// progress_since() — a caller-supplied progress sink still receives
  /// every update. Throws QueueFullError when the queue is at
  /// max_queue_depth.
  std::uint64_t submit(RunRequest request);

  /// Requests cancellation: a queued job is cancelled immediately, a
  /// running one within a bounded number of gate/shard steps. Returns
  /// false for unknown ids and jobs already in a terminal state.
  bool cancel(std::uint64_t id);

  /// Snapshot of a job; throws ValueError for unknown ids.
  [[nodiscard]] JobInfo info(std::uint64_t id) const;

  /// Blocks until the job reaches a terminal state (or `timeout`
  /// passes) and returns the snapshot.
  JobInfo wait(std::uint64_t id,
               std::chrono::milliseconds timeout =
                   std::chrono::milliseconds::max()) const;

  /// The job's recorded progress updates starting at index `since`
  /// (replay cursor for streaming endpoints).
  [[nodiscard]] std::vector<ProgressUpdate> progress_since(
      std::uint64_t id, std::size_t since) const;

  /// Blocks until the job has recorded more than `since` updates or
  /// reached a terminal state (or `timeout` passed). Returns true when
  /// either happened — the streaming endpoint's poll primitive.
  bool wait_progress(std::uint64_t id, std::size_t since,
                     std::chrono::milliseconds timeout) const;

  /// Aggregate counters.
  [[nodiscard]] SchedulerStats stats() const;

  /// The session jobs run through (for direct, unqueued runs — the
  /// daemon's synchronous endpoints — and for tests comparing results).
  [[nodiscard]] Session& session() { return session_; }

  /// Smallest job id still known (ids below it may have been evicted
  /// by the retention bound). The daemon prunes its per-job side
  /// tables with this.
  [[nodiscard]] std::uint64_t min_retained_id() const;

 private:
  struct Job;
  using JobPtr = std::shared_ptr<Job>;

  /// Heap order for queue_: higher priority first, ties FIFO.
  static bool heap_less(const JobPtr& a, const JobPtr& b);

  void runner_loop();
  /// Executes one dequeued job outside the lock.
  void run_job(const JobPtr& job);
  /// Records a terminal transition and evicts the oldest terminal jobs
  /// beyond max_retained_jobs.
  void note_terminal_locked(const JobPtr& job);
  [[nodiscard]] JobInfo snapshot_locked(const Job& job) const;
  [[nodiscard]] JobPtr find_locked(std::uint64_t id) const;

  SchedulerOptions options_;
  Session session_;

  mutable std::mutex mutex_;
  /// Signals runners about new work or shutdown.
  std::condition_variable work_available_;
  /// Broadcast on every job state change and progress update (wait /
  /// wait_progress).
  mutable std::condition_variable job_changed_;
  std::map<std::uint64_t, JobPtr> jobs_;
  std::vector<JobPtr> queue_;  // heap ordered by (priority, -seq)
  /// Terminal job ids in completion order — the eviction queue.
  std::deque<std::uint64_t> terminal_order_;
  std::vector<std::thread> runners_;
  SchedulerStats stats_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_start_order_ = 1;
  bool stopping_ = false;
};

}  // namespace bgls::service

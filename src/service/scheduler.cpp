#include "service/scheduler.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace bgls::service {

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timeout";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

/// Internal job record. Guarded by the scheduler mutex except where
/// noted.
struct JobScheduler::Job {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  // FIFO tie-break within a priority class
  int priority = 0;
  RunRequest request;
  /// Job-owned stop handle; also reachable by the caller when they
  /// supplied a token in the request. Cancel/deadline-safe to touch
  /// without the lock.
  CancellationToken token;
  JobState state = JobState::kQueued;
  std::string error;
  std::shared_ptr<const RunResult> result;
  std::vector<ProgressUpdate> updates;
  std::uint64_t completed_repetitions = 0;
  std::uint64_t start_order = 0;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point started_at;
  std::chrono::steady_clock::time_point finished_at;
  /// First cancel() request, for the cancel-latency series.
  bool cancel_requested = false;
  std::chrono::steady_clock::time_point cancel_requested_at;
  /// The job's trace (span IDs derived from the job id); null when
  /// telemetry is compiled out.
  std::shared_ptr<obs::Trace> trace;
};

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Scheduler series: process-wide (several schedulers — e.g. in tests —
/// accumulate into the same series; per-instance numbers live in
/// SchedulerStats).
struct SchedulerMetrics {
  obs::Counter submitted;
  obs::Counter rejected;
  obs::Counter evicted;
  obs::Counter done;
  obs::Counter failed;
  obs::Counter cancelled;
  obs::Counter timed_out;
  obs::Gauge queue_depth;
  obs::Gauge running;
  obs::Histogram queue_wait;
  obs::Histogram run_seconds;
  obs::Histogram cancel_latency;

  SchedulerMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    submitted = registry.counter("bgls_scheduler_submitted_total",
                                 "Jobs admitted to the queue");
    rejected = registry.counter(
        "bgls_scheduler_rejected_total",
        "Submissions rejected by admission control (queue full)");
    evicted = registry.counter(
        "bgls_scheduler_evicted_total",
        "Terminal jobs forgotten by the retention bound");
    const char* help = "Jobs finished, by terminal state";
    done = registry.counter("bgls_scheduler_jobs_total{state=\"done\"}", help);
    failed =
        registry.counter("bgls_scheduler_jobs_total{state=\"failed\"}", help);
    cancelled = registry.counter(
        "bgls_scheduler_jobs_total{state=\"cancelled\"}", help);
    timed_out = registry.counter(
        "bgls_scheduler_jobs_total{state=\"timeout\"}", help);
    queue_depth = registry.gauge("bgls_scheduler_queue_depth",
                                 "Jobs currently queued (not yet running)");
    running =
        registry.gauge("bgls_scheduler_running", "Jobs currently executing");
    queue_wait = registry.histogram(
        "bgls_scheduler_queue_wait_seconds",
        "Time from admission to run start (or to terminal, for jobs "
        "that never ran)");
    run_seconds = registry.histogram("bgls_scheduler_run_seconds",
                                     "Job execution wall time");
    cancel_latency = registry.histogram(
        "bgls_scheduler_cancel_latency_seconds",
        "Time from cancel() to the job reaching a terminal state");
  }

  static SchedulerMetrics& instance() {
    static SchedulerMetrics metrics;
    return metrics;
  }
};

}  // namespace

/// Max-heap order: higher priority first, then earlier submission.
/// (std::push_heap keeps the *largest* element at the front, so the
/// comparator says "a is worse than b".)
bool JobScheduler::heap_less(const JobPtr& a, const JobPtr& b) {
  if (a->priority != b->priority) return a->priority < b->priority;
  return a->seq > b->seq;
}

JobScheduler::JobScheduler(SchedulerOptions options)
    : options_(options), session_(options.session) {
  const int runners = std::max(1, options_.max_concurrent_jobs);
  runners_.reserve(static_cast<std::size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued jobs become cancelled without running; running jobs get
    // their tokens cancelled and finish (as kCancelled) on their own
    // runner before it observes stopping_.
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->error = "scheduler shut down";
        job->finished_at = std::chrono::steady_clock::now();
        ++stats_.cancelled;
      }
      job->token.cancel();
    }
    queue_.clear();
  }
  work_available_.notify_all();
  job_changed_.notify_all();
  for (std::thread& runner : runners_) runner.join();
}

std::uint64_t JobScheduler::submit(RunRequest request) {
  JobPtr job = std::make_shared<Job>();
  job->priority = request.priority;
  job->submitted_at = std::chrono::steady_clock::now();

  // The job's stop handle: reuse a caller-supplied token (so the caller
  // can cancel directly) or mint one. The deadline is armed *now* —
  // time spent queued counts against the budget, the service contract.
  job->token = request.cancel_token.valid() ? request.cancel_token
                                            : CancellationToken::make();
  if (request.deadline_ms > 0) {
    job->token.set_deadline_after(
        std::chrono::milliseconds(request.deadline_ms));
  }
  request.cancel_token = job->token;
  // Deadline already armed; Session::run must not re-arm it later
  // (that would restart the clock at execution).
  request.deadline_ms = 0;

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    BGLS_REQUIRE(!stopping_, "scheduler is shutting down");
    if (queue_.size() >= options_.max_queue_depth) {
      ++stats_.rejected;
      SchedulerMetrics::instance().rejected.add();
      detail::throw_error<QueueFullError>(
          "job rejected: queue is full (", queue_.size(), " of ",
          options_.max_queue_depth,
          " slots); retry later or raise max_queue_depth");
    }
    job->id = next_id_++;
    job->seq = job->id;
    job->request = std::move(request);
    if constexpr (obs::kTelemetryCompiled) {
      // One trace per job, identified by the job id: span IDs derived
      // from it are stable across runs and thread counts.
      job->trace = std::make_shared<obs::Trace>(job->id);
      job->request.trace = job->trace.get();
    }

    // Record every progress update on the job (for poll/stream
    // replays), then forward to any caller-supplied sink.
    Job* raw = job.get();  // jobs_ keeps the record alive for our lifetime
    ProgressFn user_sink = std::move(raw->request.progress.sink);
    if (raw->request.progress.every > 0) {
      raw->request.progress.sink = [this, raw,
                                    user_sink](const ProgressUpdate& update) {
        {
          const std::lock_guard<std::mutex> inner(mutex_);
          raw->updates.push_back(update);
          raw->completed_repetitions = update.completed_repetitions;
        }
        job_changed_.notify_all();
        if (user_sink) user_sink(update);
      };
    }

    jobs_.emplace(job->id, job);
    queue_.push_back(job);
    std::push_heap(queue_.begin(), queue_.end(), heap_less);
    ++stats_.submitted;
    SchedulerMetrics& metrics = SchedulerMetrics::instance();
    metrics.submitted.add();
    metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
  }
  work_available_.notify_one();
  return job->id;
}

bool JobScheduler::cancel(std::uint64_t id) {
  JobPtr job;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || is_terminal(it->second->state)) return false;
    job = it->second;
    if (!job->cancel_requested) {
      job->cancel_requested = true;
      job->cancel_requested_at = std::chrono::steady_clock::now();
    }
    if (job->state == JobState::kQueued) {
      // Cancelled before running: terminal immediately, and removed
      // from the heap so it stops counting against admission control
      // (queues are at most max_queue_depth deep, so the linear erase
      // is cheap).
      job->state = JobState::kCancelled;
      job->error = "cancelled while queued";
      job->finished_at = std::chrono::steady_clock::now();
      ++stats_.cancelled;
      const auto queued = std::find(queue_.begin(), queue_.end(), job);
      if (queued != queue_.end()) {
        queue_.erase(queued);
        std::make_heap(queue_.begin(), queue_.end(), heap_less);
      }
      note_terminal_locked(job);
      SchedulerMetrics& metrics = SchedulerMetrics::instance();
      metrics.cancelled.add();
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      metrics.queue_wait.observe(
          seconds_between(job->submitted_at, job->finished_at));
      metrics.cancel_latency.observe(
          seconds_between(job->cancel_requested_at, job->finished_at));
    }
  }
  // Running jobs stop cooperatively at their next gate/shard check.
  job->token.cancel();
  job_changed_.notify_all();
  return true;
}

JobInfo JobScheduler::info(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(*find_locked(id));
}

JobInfo JobScheduler::wait(std::uint64_t id,
                           std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  // Copy of the shared_ptr: the job record stays alive across the
  // unlocked waiting even if retention evicts it from jobs_.
  const JobPtr job = find_locked(id);
  const auto done = [&] { return is_terminal(job->state); };
  if (timeout == std::chrono::milliseconds::max()) {
    job_changed_.wait(lock, done);
  } else {
    job_changed_.wait_for(lock, timeout, done);
  }
  return snapshot_locked(*job);
}

std::vector<ProgressUpdate> JobScheduler::progress_since(
    std::uint64_t id, std::size_t since) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const JobPtr job = find_locked(id);
  if (since >= job->updates.size()) return {};
  return {job->updates.begin() + static_cast<std::ptrdiff_t>(since),
          job->updates.end()};
}

bool JobScheduler::wait_progress(std::uint64_t id, std::size_t since,
                                 std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const JobPtr job = find_locked(id);  // survives eviction (see wait)
  return job_changed_.wait_for(lock, timeout, [&] {
    return job->updates.size() > since || is_terminal(job->state);
  });
}

SchedulerStats JobScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats out = stats_;
  out.queue_depth = queue_.size();
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) ++running;
  }
  out.running = running;
  return out;
}

void JobScheduler::runner_loop() {
  while (true) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      std::pop_heap(queue_.begin(), queue_.end(), heap_less);
      job = std::move(queue_.back());
      queue_.pop_back();
      SchedulerMetrics& metrics = SchedulerMetrics::instance();
      metrics.queue_depth.set(static_cast<std::int64_t>(queue_.size()));
      if (is_terminal(job->state)) continue;  // cancelled while queued
      // A deadline that expired in the queue never samples.
      if (job->token.stop_kind() == StopKind::kDeadline) {
        job->state = JobState::kTimedOut;
        job->error = "deadline exceeded while queued";
        job->finished_at = std::chrono::steady_clock::now();
        ++stats_.timed_out;
        note_terminal_locked(job);
        metrics.timed_out.add();
        metrics.queue_wait.observe(
            seconds_between(job->submitted_at, job->finished_at));
        lock.unlock();
        job_changed_.notify_all();
        continue;
      }
      job->state = JobState::kRunning;
      job->started_at = std::chrono::steady_clock::now();
      job->start_order = next_start_order_++;
      const double queue_wait =
          seconds_between(job->submitted_at, job->started_at);
      metrics.queue_wait.observe(queue_wait);
      metrics.running.add(1);
      if (job->trace) {
        // Queue wait as a manually recorded span: no scope existed while
        // the job sat in the heap.
        job->trace->record({obs::Trace::span_id(job->id, "queue", 0), 0,
                            "queue", 0, queue_wait});
      }
    }
    job_changed_.notify_all();
    run_job(job);
    job_changed_.notify_all();
  }
}

void JobScheduler::run_job(const JobPtr& job) {
  JobState state = JobState::kDone;
  std::string error;
  std::shared_ptr<RunResult> result;
  try {
    result = std::make_shared<RunResult>(session_.run(job->request));
  } catch (const CancelledError& e) {
    state = JobState::kCancelled;
    error = e.what();
  } catch (const DeadlineExceededError& e) {
    state = JobState::kTimedOut;
    error = e.what();
  } catch (const std::exception& e) {
    state = JobState::kFailed;
    error = e.what();
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  job->state = state;
  job->error = std::move(error);
  if (result) {
    // Scheduling-side wall time into the job's RunStats (never part of
    // the byte-stable reports — see core/simulator.h).
    result->stats.queue_wait_ms =
        seconds_between(job->submitted_at, job->started_at) * 1000.0;
  }
  job->result = std::move(result);
  job->finished_at = std::chrono::steady_clock::now();
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      ++stats_.completed_per_backend[job->result->backend_name];
      break;
    case JobState::kFailed: ++stats_.failed; break;
    case JobState::kCancelled: ++stats_.cancelled; break;
    case JobState::kTimedOut: ++stats_.timed_out; break;
    default: break;
  }
  note_terminal_locked(job);
  SchedulerMetrics& metrics = SchedulerMetrics::instance();
  metrics.running.sub(1);
  const double run_seconds =
      seconds_between(job->started_at, job->finished_at);
  metrics.run_seconds.observe(run_seconds);
  switch (state) {
    case JobState::kDone: metrics.done.add(); break;
    case JobState::kFailed: metrics.failed.add(); break;
    case JobState::kCancelled: metrics.cancelled.add(); break;
    case JobState::kTimedOut: metrics.timed_out.add(); break;
    default: break;
  }
  if (job->cancel_requested) {
    metrics.cancel_latency.observe(
        seconds_between(job->cancel_requested_at, job->finished_at));
  }
  if (job->trace) {
    job->trace->record({obs::Trace::span_id(job->id, "run", 0), 0, "run", 0,
                        run_seconds});
  }
}

void JobScheduler::note_terminal_locked(const JobPtr& job) {
  terminal_order_.push_back(job->id);
  // Retention bound: a long-lived daemon must not accumulate every job
  // (circuit + result + progress history) forever. Oldest-finished
  // jobs are forgotten first; live jobs are never in terminal_order_.
  while (terminal_order_.size() > options_.max_retained_jobs) {
    jobs_.erase(terminal_order_.front());
    terminal_order_.pop_front();
    // The per-state counters in stats_ were folded in at the terminal
    // transition, so forgetting the record loses no history — only the
    // eviction itself is worth counting.
    ++stats_.evicted;
    SchedulerMetrics::instance().evicted.add();
  }
}

std::uint64_t JobScheduler::min_retained_id() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.empty() ? next_id_ : jobs_.begin()->first;
}

JobInfo JobScheduler::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.priority = job.priority;
  info.error = job.error;
  info.completed_repetitions = job.completed_repetitions;
  info.total_repetitions = job.request.repetitions;
  info.progress_updates = job.updates.size();
  info.result = job.result;
  info.start_order = job.start_order;
  info.trace = job.trace;
  const auto now = std::chrono::steady_clock::now();
  const auto started =
      job.start_order > 0 ? job.started_at : (is_terminal(job.state) ? job.finished_at : now);
  info.queue_seconds = seconds_between(job.submitted_at, started);
  if (job.start_order > 0) {
    info.run_seconds = seconds_between(
        job.started_at, is_terminal(job.state) ? job.finished_at : now);
  }
  return info;
}

JobScheduler::JobPtr JobScheduler::find_locked(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  BGLS_REQUIRE(it != jobs_.end(),
               "unknown job id ", id,
               " (never submitted, or evicted by the retention bound)");
  return it->second;
}

}  // namespace bgls::service

#include "service/scheduler.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "obs/log.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace bgls::service {

std::string_view job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kTimedOut: return "timeout";
  }
  return "?";
}

bool is_terminal(JobState state) {
  return state != JobState::kQueued && state != JobState::kRunning;
}

/// Internal job record. Guarded by the scheduler mutex except where
/// noted.
struct JobScheduler::Job {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  // FIFO tie-break within a priority class
  int priority = 0;
  /// Owning tenant ("" = the anonymous default tenant).
  std::string tenant;
  /// Weighted-fair virtual start tag: max(global vtime, tenant vtime)
  /// at admission. Dispatch prefers lower tags (after priority).
  double vtime = 0.0;
  /// What the tenant's vtime was charged for this job (predicted
  /// seconds, floor 1 ms so zero-cost estimates still advance time).
  double cost_units = 0.0;
  /// CostModel estimate at admission; 0 when none was possible.
  double predicted_seconds = 0.0;
  /// Answered from the result cache (instantly terminal, never ran).
  bool from_cache = false;
  /// Canonical cache key when the request is cacheable and missed (the
  /// completed result is inserted under it); empty otherwise.
  std::string cache_key;
  RunRequest request;
  /// Job-owned stop handle; also reachable by the caller when they
  /// supplied a token in the request. Cancel/deadline-safe to touch
  /// without the lock.
  CancellationToken token;
  JobState state = JobState::kQueued;
  std::string error;
  std::shared_ptr<const RunResult> result;
  std::vector<ProgressUpdate> updates;
  std::uint64_t completed_repetitions = 0;
  std::uint64_t start_order = 0;
  std::chrono::steady_clock::time_point submitted_at;
  std::chrono::steady_clock::time_point started_at;
  std::chrono::steady_clock::time_point finished_at;
  /// First cancel() request, for the cancel-latency series.
  bool cancel_requested = false;
  std::chrono::steady_clock::time_point cancel_requested_at;
  /// Latest resumable snapshot (core/checkpoint.h), fed by the
  /// checkpoint sink installed at submit; what retries and preemption
  /// resume from.
  std::shared_ptr<const RunCheckpoint> checkpoint;
  /// Scheduler-initiated cancel (checkpoint-and-preempt): the
  /// CancelledError it causes re-queues the job instead of ending it.
  bool preempt_requested = false;
  /// Transient-failure retries consumed.
  std::uint64_t retries = 0;
  /// Earliest time a re-queued job may start (retry backoff).
  std::chrono::steady_clock::time_point ready_at;
  /// Original deadline, re-armed when preemption mints a fresh token.
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline_at;
  /// The job's trace (span IDs derived from the job id); null when
  /// telemetry is compiled out.
  std::shared_ptr<obs::Trace> trace;
};

namespace {

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// Scheduler series: process-wide (several schedulers — e.g. in tests —
/// accumulate into the same series; per-instance numbers live in
/// SchedulerStats).
struct SchedulerMetrics {
  obs::Counter submitted;
  obs::Counter rejected;
  obs::Counter evicted;
  obs::Counter done;
  obs::Counter failed;
  obs::Counter cancelled;
  obs::Counter timed_out;
  obs::Counter retried;
  obs::Counter preempted;
  obs::Counter resumed;
  /// Admission rejections by reason (rejected aggregates all of them).
  obs::Counter rejected_queue_full;
  obs::Counter rejected_tenant_quota;
  obs::Counter rejected_over_budget;
  obs::Counter rejected_backlog;
  obs::Gauge queue_depth;
  obs::Gauge running;
  obs::Histogram queue_wait;
  obs::Histogram run_seconds;
  obs::Histogram cancel_latency;

  SchedulerMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    submitted = registry.counter("bgls_scheduler_submitted_total",
                                 "Jobs admitted to the queue");
    rejected = registry.counter(
        "bgls_scheduler_rejected_total",
        "Submissions rejected by admission control (all reasons)");
    const char* reject_help = "Admission rejections, by reason";
    rejected_queue_full = registry.counter(
        "bgls_admission_rejected_total{reason=\"queue_full\"}", reject_help);
    rejected_tenant_quota = registry.counter(
        "bgls_admission_rejected_total{reason=\"tenant_quota\"}",
        reject_help);
    rejected_over_budget = registry.counter(
        "bgls_admission_rejected_total{reason=\"over_budget\"}", reject_help);
    rejected_backlog = registry.counter(
        "bgls_admission_rejected_total{reason=\"backlog\"}", reject_help);
    evicted = registry.counter(
        "bgls_scheduler_evicted_total",
        "Terminal jobs forgotten by the retention bound");
    const char* help = "Jobs finished, by terminal state";
    done = registry.counter("bgls_scheduler_jobs_total{state=\"done\"}", help);
    failed =
        registry.counter("bgls_scheduler_jobs_total{state=\"failed\"}", help);
    cancelled = registry.counter(
        "bgls_scheduler_jobs_total{state=\"cancelled\"}", help);
    timed_out = registry.counter(
        "bgls_scheduler_jobs_total{state=\"timeout\"}", help);
    retried = registry.counter(
        "bgls_jobs_retried_total",
        "Transiently failed jobs re-queued with backoff");
    preempted = registry.counter(
        "bgls_scheduler_preempted_total",
        "Running jobs checkpoint-and-preempted by higher-priority work");
    resumed = registry.counter(
        "bgls_jobs_resumed_total",
        "Runs started from a checkpoint (retries, preemptions, journal "
        "replays)");
    queue_depth = registry.gauge("bgls_scheduler_queue_depth",
                                 "Jobs currently queued (not yet running)");
    running =
        registry.gauge("bgls_scheduler_running", "Jobs currently executing");
    queue_wait = registry.histogram(
        "bgls_scheduler_queue_wait_seconds",
        "Time from admission to run start (or to terminal, for jobs "
        "that never ran)");
    run_seconds = registry.histogram("bgls_scheduler_run_seconds",
                                     "Job execution wall time");
    cancel_latency = registry.histogram(
        "bgls_scheduler_cancel_latency_seconds",
        "Time from cancel() to the job reaching a terminal state");
  }

  static SchedulerMetrics& instance() {
    static SchedulerMetrics metrics;
    return metrics;
  }
};

/// Tenant names become metric label values; keep the exposition text
/// parseable whatever arrives on the wire.
std::string metric_safe_label(const std::string& name) {
  std::string out = name.empty() ? "default" : name;
  for (char& c : out) {
    if (c == '"' || c == '\\' || c == '\n' || c == '{' || c == '}') c = '_';
  }
  return out;
}

}  // namespace

/// Dispatch order: higher priority first, then lower weighted-fair
/// virtual time, then earlier submission. Returns "a is worse than b"
/// (take_next_locked scans for the max element).
bool JobScheduler::dispatch_less(const JobPtr& a, const JobPtr& b) {
  if (a->priority != b->priority) return a->priority < b->priority;
  if (a->vtime != b->vtime) return a->vtime > b->vtime;
  return a->seq > b->seq;
}

JobScheduler::JobScheduler(SchedulerOptions options)
    : options_(options), session_(options.session) {
  const int runners = std::max(1, options_.max_concurrent_jobs);
  runners_.reserve(static_cast<std::size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { runner_loop(); });
  }
}

JobScheduler::~JobScheduler() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    // Queued jobs become cancelled without running; running jobs get
    // their tokens cancelled and finish (as kCancelled) on their own
    // runner before it observes stopping_.
    std::uint64_t shutdown_cancelled = 0;
    for (auto& [id, job] : jobs_) {
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
        job->error = "scheduler shut down";
        job->finished_at = std::chrono::steady_clock::now();
        ++stats_.cancelled;
        ++shutdown_cancelled;
      }
      job->token.cancel();
    }
    queue_.clear();
    delayed_.clear();
    predicted_backlog_seconds_ = 0.0;
    for (auto& [name, tenant] : tenants_) tenant.queued = 0;
    // Process-wide series must see the shutdown like SchedulerStats
    // does: the queue is gone (a stale nonzero gauge would outlive this
    // scheduler forever) and shutdown-cancelled jobs count as
    // cancelled terminals.
    SchedulerMetrics& metrics = SchedulerMetrics::instance();
    if (shutdown_cancelled > 0) metrics.cancelled.add(shutdown_cancelled);
    metrics.queue_depth.set(0);
  }
  work_available_.notify_all();
  job_changed_.notify_all();
  for (std::thread& runner : runners_) runner.join();
}

std::uint64_t JobScheduler::submit(RunRequest request) {
  return submit_impl(std::move(request), 0);
}

std::uint64_t JobScheduler::resubmit(RunRequest request,
                                     std::uint64_t forced_id) {
  BGLS_REQUIRE(forced_id > 0, "resubmit needs the journaled job id");
  return submit_impl(std::move(request), forced_id);
}

void JobScheduler::reserve_ids_through(std::uint64_t max_id) {
  const std::lock_guard<std::mutex> lock(mutex_);
  next_id_ = std::max(next_id_, max_id + 1);
}

std::uint64_t JobScheduler::submit_impl(RunRequest request,
                                        std::uint64_t forced_id) {
  JobPtr job = std::make_shared<Job>();
  job->priority = request.priority;
  job->tenant = request.tenant;
  job->submitted_at = std::chrono::steady_clock::now();

  // Result cache: a hit never consumes a queue slot, a runner, or the
  // tenant's fair share — the job is admitted as instantly terminal.
  // Journal replays (forced_id) bypass the cache: their result must
  // come from the same code path that produced it originally.
  std::shared_ptr<const RunResult> cached;
  if (options_.result_cache != nullptr && forced_id == 0) {
    if (std::optional<std::string> key = ResultCache::key_for(request)) {
      job->cache_key = std::move(*key);
      cached = options_.result_cache->lookup(job->cache_key);
    }
  }
  // Cost estimate (pure function of the request — computed outside the
  // lock). Negative = no estimate possible; such jobs bypass the cost
  // budgets and fail later with their real error if unrunnable.
  const double predicted =
      cached != nullptr ? 0.0 : estimate_seconds(request);
  job->predicted_seconds = std::max(predicted, 0.0);

  // The job's stop handle: reuse a caller-supplied token (so the caller
  // can cancel directly) or mint one. The deadline is armed *now* —
  // time spent queued counts against the budget, the service contract.
  job->token = request.cancel_token.valid() ? request.cancel_token
                                            : CancellationToken::make();
  if (request.deadline_ms > 0) {
    job->has_deadline = true;
    job->deadline_at = job->submitted_at +
                       std::chrono::milliseconds(request.deadline_ms);
    job->token.set_deadline(job->deadline_at);
  }
  request.cancel_token = job->token;
  // Deadline already armed; Session::run must not re-arm it later
  // (that would restart the clock at execution).
  request.deadline_ms = 0;
  job->checkpoint = request.resume;  // replayed jobs resume from here

  bool notify_terminal = false;
  JobInfo terminal_info;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    BGLS_REQUIRE(!stopping_, "scheduler is shutting down");
    SchedulerMetrics& metrics = SchedulerMetrics::instance();
    if (forced_id == 0 && cached == nullptr) {
      // Admission control. The depth bound counts retry-delayed jobs
      // too: they re-enter the ready queue when their backoff elapses,
      // so ignoring them would let a retry flood grow the backlog
      // unboundedly past max_queue_depth.
      const std::size_t backlog = queue_.size() + delayed_.size();
      if (backlog >= options_.max_queue_depth) {
        ++stats_.rejected;
        metrics.rejected.add();
        metrics.rejected_queue_full.add();
        obs::log(obs::LogLevel::kWarn, "scheduler", "admission rejected",
                 {{"reason", "queue_full"},
                  {"tenant", job->tenant},
                  {"backlog", static_cast<std::uint64_t>(backlog)}},
                 request.trace_id);
        detail::throw_error<QueueFullError>(
            "job rejected: queue is full (", backlog, " of ",
            options_.max_queue_depth,
            " slots, retry-delayed jobs included); retry later or raise "
            "max_queue_depth");
      }
      TenantState& tenant = tenant_locked(job->tenant);
      if (tenant.quota.max_queued > 0 &&
          tenant.queued >= tenant.quota.max_queued) {
        ++stats_.rejected;
        metrics.rejected.add();
        metrics.rejected_tenant_quota.add();
        obs::log(obs::LogLevel::kWarn, "scheduler", "admission rejected",
                 {{"reason", "tenant_quota"},
                  {"tenant", job->tenant},
                  {"queued", tenant.queued}},
                 request.trace_id);
        detail::throw_error<TenantQuotaError>(
            "job rejected: tenant '", metric_safe_label(job->tenant),
            "' is at its queued-job quota (", tenant.queued, " of ",
            tenant.quota.max_queued, "); retry later");
      }
      if (predicted >= 0.0 && options_.max_job_seconds > 0.0 &&
          predicted > options_.max_job_seconds) {
        ++stats_.rejected;
        metrics.rejected.add();
        metrics.rejected_over_budget.add();
        obs::log(obs::LogLevel::kWarn, "scheduler", "admission rejected",
                 {{"reason", "over_budget"},
                  {"tenant", job->tenant},
                  {"predicted_seconds", predicted}},
                 request.trace_id);
        detail::throw_error<CostBudgetError>(
            "job rejected: predicted cost ", predicted,
            " s exceeds the per-job budget of ", options_.max_job_seconds,
            " s; shrink the circuit or repetitions");
      }
      if (predicted >= 0.0 && options_.max_queue_seconds > 0.0 &&
          predicted_backlog_seconds_ + predicted >
              options_.max_queue_seconds) {
        ++stats_.rejected;
        metrics.rejected.add();
        metrics.rejected_backlog.add();
        obs::log(obs::LogLevel::kWarn, "scheduler", "admission rejected",
                 {{"reason", "backlog"},
                  {"tenant", job->tenant},
                  {"backlog_seconds", predicted_backlog_seconds_ + predicted}},
                 request.trace_id);
        detail::throw_error<CostBudgetError>(
            "job rejected: predicted backlog of ",
            predicted_backlog_seconds_ + predicted,
            " s exceeds the queue budget of ", options_.max_queue_seconds,
            " s; retry once the backlog drains");
      }
    }
    if (forced_id != 0) {
      BGLS_REQUIRE(jobs_.count(forced_id) == 0,
                   "job id ", forced_id, " is already known");
      next_id_ = std::max(next_id_, forced_id + 1);
    }
    job->id = forced_id != 0 ? forced_id : next_id_++;
    job->seq = job->id;
    job->request = std::move(request);
    if constexpr (obs::kTelemetryCompiled) {
      // One trace per job. A propagated context wins: span IDs then
      // derive from the cross-process trace id and the queue/run spans
      // hang under the caller's parent span (the fleet front's
      // fleet.place). Otherwise the job id identifies the trace, as
      // before — stable across runs and thread counts either way.
      const std::uint64_t trace_id = job->request.trace_id != 0
                                         ? job->request.trace_id
                                         : job->id;
      job->trace =
          std::make_shared<obs::Trace>(trace_id, job->request.trace_parent);
      // Session/engine spans (optimize/sample/shard/evolve) open with
      // no enclosing span on their thread; the root fallback parents
      // them under the job's "run" span, one deterministic tree
      // regardless of which thread records them.
      job->trace->set_root(obs::Trace::span_id(trace_id, "run", 0));
      job->request.trace = job->trace.get();
    }

    TenantState& tenant = tenant_locked(job->tenant);
    ++stats_.submitted;
    metrics.submitted.add();
    tenant.submitted_metric.add();

    if (cached != nullptr) {
      // Cache hit: the job is born terminal with the original result
      // (byte-identical by the determinism contract) — no queue slot,
      // no runner, no fair-share charge. start_order stays 0 (it never
      // ran) and stats record it as completed like any other job.
      job->from_cache = true;
      job->state = JobState::kDone;
      job->result = std::move(cached);
      job->finished_at = std::chrono::steady_clock::now();
      jobs_.emplace(job->id, job);
      ++stats_.completed;
      ++stats_.cache_hits;
      ++stats_.completed_per_backend[job->result->backend_name];
      ++stats_.completed_per_tenant[metric_safe_label(job->tenant)];
      tenant.completed_metric.add();
      metrics.done.add();
      note_terminal_locked(job);
      if (options_.on_terminal) {
        terminal_info = snapshot_locked(*job);
        notify_terminal = true;
      }
    } else {
      // Record every progress update on the job (for poll/stream
      // replays), then forward to any caller-supplied sink.
      Job* raw = job.get();  // jobs_ keeps the record alive for our lifetime
      ProgressFn user_sink = std::move(raw->request.progress.sink);
      if (raw->request.progress.every > 0) {
        raw->request.progress.sink =
            [this, raw, user_sink](const ProgressUpdate& update) {
              {
                const std::lock_guard<std::mutex> inner(mutex_);
                raw->updates.push_back(update);
                raw->completed_repetitions = update.completed_repetitions;
              }
              job_changed_.notify_all();
              if (user_sink) user_sink(update);
            };
      }

      // Capture resumable snapshots on the job (what retries,
      // preemption, and the journal resume from), then forward to any
      // caller sink.
      const std::uint64_t checkpoint_every =
          raw->request.checkpoint.every > 0 ? raw->request.checkpoint.every
                                            : options_.checkpoint_every;
      if (checkpoint_every > 0) {
        std::function<void(const RunCheckpoint&)> user_ckpt =
            std::move(raw->request.checkpoint.sink);
        raw->request.checkpoint.every = checkpoint_every;
        raw->request.checkpoint.sink = [this, raw, user_ckpt](
                                           const RunCheckpoint& update) {
          auto copy = std::make_shared<const RunCheckpoint>(update);
          {
            const std::lock_guard<std::mutex> inner(mutex_);
            raw->checkpoint = copy;
          }
          if (options_.on_checkpoint) {
            try {
              options_.on_checkpoint(raw->id, copy);
            } catch (...) {
              // A lost checkpoint record only means a post-crash resume
              // starts from an earlier snapshot.
            }
          }
          if (user_ckpt) user_ckpt(update);
        };
      }

      // Weighted-fair start tag: a tenant's jobs are spaced out along
      // the virtual time axis by predicted-cost/weight, so heavier
      // weights pack more work per unit of virtual time. The max with
      // the global clock stops an idle tenant from hoarding credit.
      job->cost_units = std::max(job->predicted_seconds, 0.001);
      job->vtime = std::max(global_vtime_, tenant.vtime);
      tenant.vtime =
          job->vtime + job->cost_units / std::max(tenant.quota.weight, 1e-9);
      ++tenant.queued;
      predicted_backlog_seconds_ += job->predicted_seconds;
      jobs_.emplace(job->id, job);
      queue_.push_back(job);
      metrics.queue_depth.set(
          static_cast<std::int64_t>(queue_.size() + delayed_.size()));
      if (options_.preempt_lower_priority) maybe_preempt_locked(job);
    }
  }
  if (job->from_cache) {
    // Already terminal — wake wait()ers, not runners.
    job_changed_.notify_all();
    if (notify_terminal) {
      try {
        options_.on_terminal(terminal_info);
      } catch (...) {
      }
    }
  } else {
    work_available_.notify_one();
  }
  return job->id;
}

void JobScheduler::maybe_preempt_locked(const JobPtr& incoming) {
  // Only worth displacing someone when no runner will pick the new job
  // up anyway.
  std::size_t running = 0;
  JobPtr victim;
  for (const auto& [id, job] : jobs_) {
    if (job->state != JobState::kRunning) continue;
    ++running;
    if (job->preempt_requested || job->cancel_requested) continue;
    if (!victim || job->priority < victim->priority) victim = job;
  }
  if (running < static_cast<std::size_t>(
                    std::max(1, options_.max_concurrent_jobs))) {
    return;  // a runner is (or is about to be) free
  }
  if (!victim || victim->priority >= incoming->priority) return;
  victim->preempt_requested = true;
  victim->token.cancel();
  ++stats_.preempted;
  SchedulerMetrics::instance().preempted.add();
  obs::log(obs::LogLevel::kInfo, "scheduler", "job preempted",
           {{"victim_priority", victim->priority},
            {"incoming_priority", incoming->priority},
            {"tenant", victim->tenant}},
           victim->trace ? victim->trace->id() : 0, victim->id);
}

bool JobScheduler::cancel(std::uint64_t id) {
  JobPtr job;
  bool became_terminal = false;
  JobInfo terminal_info;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end() || is_terminal(it->second->state)) return false;
    job = it->second;
    if (!job->cancel_requested) {
      job->cancel_requested = true;
      job->cancel_requested_at = std::chrono::steady_clock::now();
    }
    if (job->state == JobState::kQueued) {
      // Cancelled before running: terminal immediately, and removed
      // from the queue so it stops counting against admission control
      // (queues are at most max_queue_depth deep, so the linear erase
      // is cheap).
      job->state = JobState::kCancelled;
      job->error = "cancelled while queued";
      job->finished_at = std::chrono::steady_clock::now();
      ++stats_.cancelled;
      bool dequeued = false;
      const auto queued = std::find(queue_.begin(), queue_.end(), job);
      if (queued != queue_.end()) {
        queue_.erase(queued);
        dequeued = true;
      }
      const auto delayed = std::find(delayed_.begin(), delayed_.end(), job);
      if (delayed != delayed_.end()) {
        delayed_.erase(delayed);
        dequeued = true;
      }
      if (dequeued) {
        TenantState& tenant = tenant_locked(job->tenant);
        if (tenant.queued > 0) --tenant.queued;
        predicted_backlog_seconds_ = std::max(
            0.0, predicted_backlog_seconds_ - job->predicted_seconds);
      }
      note_terminal_locked(job);
      SchedulerMetrics& metrics = SchedulerMetrics::instance();
      metrics.cancelled.add();
      metrics.queue_depth.set(
          static_cast<std::int64_t>(queue_.size() + delayed_.size()));
      metrics.queue_wait.observe(
          seconds_between(job->submitted_at, job->finished_at));
      metrics.cancel_latency.observe(
          seconds_between(job->cancel_requested_at, job->finished_at));
      became_terminal = true;
      terminal_info = snapshot_locked(*job);
    }
  }
  // Running jobs stop cooperatively at their next gate/shard check.
  job->token.cancel();
  job_changed_.notify_all();
  if (became_terminal && options_.on_terminal) {
    try {
      options_.on_terminal(terminal_info);
    } catch (...) {
    }
  }
  return true;
}

JobInfo JobScheduler::info(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_locked(*find_locked(id));
}

JobInfo JobScheduler::wait(std::uint64_t id,
                           std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  // Copy of the shared_ptr: the job record stays alive across the
  // unlocked waiting even if retention evicts it from jobs_.
  const JobPtr job = find_locked(id);
  const auto done = [&] { return is_terminal(job->state); };
  if (timeout == std::chrono::milliseconds::max()) {
    job_changed_.wait(lock, done);
  } else {
    job_changed_.wait_for(lock, timeout, done);
  }
  return snapshot_locked(*job);
}

std::vector<ProgressUpdate> JobScheduler::progress_since(
    std::uint64_t id, std::size_t since) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const JobPtr job = find_locked(id);
  if (since >= job->updates.size()) return {};
  return {job->updates.begin() + static_cast<std::ptrdiff_t>(since),
          job->updates.end()};
}

bool JobScheduler::wait_progress(std::uint64_t id, std::size_t since,
                                 std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mutex_);
  const JobPtr job = find_locked(id);  // survives eviction (see wait)
  return job_changed_.wait_for(lock, timeout, [&] {
    return job->updates.size() > since || is_terminal(job->state);
  });
}

SchedulerStats JobScheduler::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  SchedulerStats out = stats_;
  out.queue_depth = queue_.size() + delayed_.size();
  std::size_t running = 0;
  for (const auto& [id, job] : jobs_) {
    if (job->state == JobState::kRunning) ++running;
  }
  out.running = running;
  return out;
}

void JobScheduler::promote_delayed_locked() {
  const auto now = std::chrono::steady_clock::now();
  auto it = delayed_.begin();
  while (it != delayed_.end()) {
    if (is_terminal((*it)->state)) {
      // Became terminal while waiting out backoff without being erased
      // by cancel() — release its backlog share here.
      TenantState& tenant = tenant_locked((*it)->tenant);
      if (tenant.queued > 0) --tenant.queued;
      predicted_backlog_seconds_ = std::max(
          0.0, predicted_backlog_seconds_ - (*it)->predicted_seconds);
      it = delayed_.erase(it);
      continue;
    }
    if ((*it)->ready_at <= now) {
      queue_.push_back(std::move(*it));
      it = delayed_.erase(it);
      continue;
    }
    ++it;
  }
}

JobScheduler::JobPtr JobScheduler::take_next_locked() {
  auto best = queue_.end();
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (is_terminal((*it)->state)) {
      // Defensive: cancel() erases cancelled jobs eagerly, but anything
      // that slipped through must not occupy a slot forever.
      TenantState& tenant = tenant_locked((*it)->tenant);
      if (tenant.queued > 0) --tenant.queued;
      predicted_backlog_seconds_ = std::max(
          0.0, predicted_backlog_seconds_ - (*it)->predicted_seconds);
      it = queue_.erase(it);
      continue;
    }
    const TenantState& tenant = tenant_locked((*it)->tenant);
    const bool eligible = tenant.quota.max_running == 0 ||
                          tenant.running < tenant.quota.max_running;
    if (eligible && (best == queue_.end() || dispatch_less(*best, *it))) {
      best = it;
    }
    ++it;
  }
  if (best == queue_.end()) return nullptr;
  JobPtr job = std::move(*best);
  queue_.erase(best);
  TenantState& tenant = tenant_locked(job->tenant);
  if (tenant.queued > 0) --tenant.queued;
  predicted_backlog_seconds_ = std::max(
      0.0, predicted_backlog_seconds_ - job->predicted_seconds);
  // The global clock follows dispatched start tags so tenants going
  // from idle to busy start at "now" in virtual time rather than
  // cashing in every idle second as credit.
  global_vtime_ = std::max(global_vtime_, job->vtime);
  SchedulerMetrics::instance().queue_depth.set(
      static_cast<std::int64_t>(queue_.size() + delayed_.size()));
  return job;
}

void JobScheduler::runner_loop() {
  while (true) {
    JobPtr job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (true) {
        promote_delayed_locked();
        if (stopping_) break;
        job = take_next_locked();
        if (job != nullptr) break;
        if (!delayed_.empty()) {
          // Sleep until the earliest backoff elapses (or new work /
          // shutdown wakes us).
          auto next = delayed_.front()->ready_at;
          for (const JobPtr& waiting : delayed_) {
            next = std::min(next, waiting->ready_at);
          }
          work_available_.wait_until(lock, next);
        } else {
          // Queue empty, or nothing eligible under the per-tenant
          // running caps — a finishing job re-notifies work_available_.
          work_available_.wait(lock);
        }
      }
      if (stopping_) return;
      SchedulerMetrics& metrics = SchedulerMetrics::instance();
      // A deadline that expired in the queue never samples.
      if (job->token.stop_kind() == StopKind::kDeadline) {
        job->state = JobState::kTimedOut;
        job->error = "deadline exceeded while queued";
        job->finished_at = std::chrono::steady_clock::now();
        ++stats_.timed_out;
        note_terminal_locked(job);
        metrics.timed_out.add();
        metrics.queue_wait.observe(
            seconds_between(job->submitted_at, job->finished_at));
        const JobInfo terminal_info = snapshot_locked(*job);
        lock.unlock();
        job_changed_.notify_all();
        if (options_.on_terminal) {
          try {
            options_.on_terminal(terminal_info);
          } catch (...) {
          }
        }
        continue;
      }
      job->state = JobState::kRunning;
      ++tenant_locked(job->tenant).running;
      job->started_at = std::chrono::steady_clock::now();
      job->start_order = next_start_order_++;
      const double queue_wait =
          seconds_between(job->submitted_at, job->started_at);
      metrics.queue_wait.observe(queue_wait);
      metrics.running.add(1);
      if (job->trace) {
        // Queue wait as a manually recorded span: no scope existed while
        // the job sat in the queue.
        job->trace->record({obs::Trace::span_id(job->trace->id(), "queue", 0),
                            job->trace->parent(), "queue", 0, queue_wait});
      }
    }
    job_changed_.notify_all();
    run_job(job);
    job_changed_.notify_all();
  }
}

void JobScheduler::run_job(const JobPtr& job) {
  if (job->request.resume != nullptr) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.resumed;
    }
    SchedulerMetrics::instance().resumed.add();
  }
  JobState state = JobState::kDone;
  // Invalid-request failures (bad circuit, unsupported operation,
  // malformed input) are deterministic — retrying them re-fails; every
  // other failure (injected faults, resource errors) may be transient.
  bool transient = true;
  std::string error;
  std::shared_ptr<RunResult> result;
  try {
    result = std::make_shared<RunResult>(session_.run(job->request));
  } catch (const CancelledError& e) {
    state = JobState::kCancelled;
    error = e.what();
  } catch (const DeadlineExceededError& e) {
    state = JobState::kTimedOut;
    error = e.what();
  } catch (const ValueError& e) {
    state = JobState::kFailed;
    transient = false;
    error = e.what();
  } catch (const ParseError& e) {
    state = JobState::kFailed;
    transient = false;
    error = e.what();
  } catch (const UnsupportedOperationError& e) {
    state = JobState::kFailed;
    transient = false;
    error = e.what();
  } catch (const std::exception& e) {
    state = JobState::kFailed;
    error = e.what();
  }

  bool requeued = false;
  JobInfo terminal_info;
  bool notify_terminal = false;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    SchedulerMetrics& metrics = SchedulerMetrics::instance();
    const auto now = std::chrono::steady_clock::now();

    // Checkpoint-and-preempt: the cancel was ours, not the caller's —
    // re-queue to resume from the latest snapshot (the burned token is
    // replaced; an armed deadline keeps its original expiry).
    if (state == JobState::kCancelled && job->preempt_requested &&
        !job->cancel_requested && !stopping_) {
      metrics.running.sub(1);
      metrics.run_seconds.observe(seconds_between(job->started_at, now));
      requeue_locked(job, now, /*fresh_token=*/true);
      requeued = true;
    } else if (state == JobState::kFailed && transient && !stopping_ &&
               !job->cancel_requested &&
               job->retries <
                   static_cast<std::uint64_t>(
                       std::max(0, options_.max_retries))) {
      // Transient failure with retry budget left: exponential backoff
      // with deterministic jitter (seeded by job id and attempt so
      // retry storms decorrelate without perturbing run results).
      ++job->retries;
      ++stats_.retried;
      metrics.retried.add();
      metrics.running.sub(1);
      metrics.run_seconds.observe(seconds_between(job->started_at, now));
      const std::uint64_t base = options_.backoff_base_ms;
      std::uint64_t backoff = base << std::min<std::uint64_t>(
                                  job->retries - 1, 16);
      if (base > 0) {
        Rng jitter(job->id * 31 + job->retries);
        backoff += jitter.uniform_int(base);
      }
      obs::log(obs::LogLevel::kWarn, "scheduler", "job retried",
               {{"attempt", job->retries},
                {"backoff_ms", backoff},
                {"error", error}},
               job->trace ? job->trace->id() : 0, job->id);
      requeue_locked(job, now + std::chrono::milliseconds(backoff),
                     /*fresh_token=*/false);
      requeued = true;
    }
    if (!requeued) {
      finish_job_locked(job, state, std::move(error), std::move(result));
      if (!stopping_ && options_.on_terminal) {
        terminal_info = snapshot_locked(*job);
        notify_terminal = true;
      }
    }
  }
  if (!requeued && state == JobState::kDone &&
      options_.result_cache != nullptr && !job->cache_key.empty()) {
    // Populate the cache outside the lock (insert takes the cache's own
    // lock). Concurrent duplicates are identical by determinism; insert
    // keeps the first.
    options_.result_cache->insert(job->cache_key, job->result);
  }
  if (requeued) {
    work_available_.notify_one();
  } else {
    // The finished job freed a runner slot *and* dropped its tenant's
    // running count — queued work that was ineligible under a
    // per-tenant cap may be dispatchable now, so every waiting runner
    // gets to rescan.
    work_available_.notify_all();
  }
  if (notify_terminal) {
    try {
      options_.on_terminal(terminal_info);
    } catch (...) {
    }
  }
}

void JobScheduler::requeue_locked(
    const JobPtr& job, std::chrono::steady_clock::time_point ready_at,
    bool fresh_token) {
  job->preempt_requested = false;
  if (fresh_token) {
    // The old token was cancelled to force the preemption and cannot be
    // reset; cancel(id) keeps working through the replacement.
    job->token = CancellationToken::make();
    if (job->has_deadline) job->token.set_deadline(job->deadline_at);
    job->request.cancel_token = job->token;
  }
  if (job->checkpoint) job->request.resume = job->checkpoint;
  job->state = JobState::kQueued;
  job->ready_at = ready_at;
  // Back from running to queued: the tenant's running slot frees up and
  // its backlog share returns. The original vtime tag is kept — the
  // fair-share charge was paid at submission, and a preempted job
  // should resume ahead of work submitted after it.
  TenantState& tenant = tenant_locked(job->tenant);
  if (tenant.running > 0) --tenant.running;
  ++tenant.queued;
  predicted_backlog_seconds_ += job->predicted_seconds;
  if (ready_at <= std::chrono::steady_clock::now()) {
    queue_.push_back(job);
  } else {
    delayed_.push_back(job);
  }
  SchedulerMetrics::instance().queue_depth.set(
      static_cast<std::int64_t>(queue_.size() + delayed_.size()));
}

void JobScheduler::finish_job_locked(const JobPtr& job, JobState state,
                                     std::string error,
                                     std::shared_ptr<RunResult> result) {
  job->state = state;
  job->error = std::move(error);
  if (result) {
    // Scheduling-side wall time into the job's RunStats (never part of
    // the byte-stable reports — see core/simulator.h).
    result->stats.queue_wait_ms =
        seconds_between(job->submitted_at, job->started_at) * 1000.0;
  }
  job->result = std::move(result);
  job->finished_at = std::chrono::steady_clock::now();
  TenantState& tenant = tenant_locked(job->tenant);
  if (tenant.running > 0) --tenant.running;
  switch (state) {
    case JobState::kDone:
      ++stats_.completed;
      ++stats_.completed_per_backend[job->result->backend_name];
      ++stats_.completed_per_tenant[metric_safe_label(job->tenant)];
      tenant.completed_metric.add();
      break;
    case JobState::kFailed: ++stats_.failed; break;
    case JobState::kCancelled: ++stats_.cancelled; break;
    case JobState::kTimedOut: ++stats_.timed_out; break;
    default: break;
  }
  note_terminal_locked(job);
  SchedulerMetrics& metrics = SchedulerMetrics::instance();
  metrics.running.sub(1);
  const double run_seconds =
      seconds_between(job->started_at, job->finished_at);
  metrics.run_seconds.observe(run_seconds);
  switch (state) {
    case JobState::kDone: metrics.done.add(); break;
    case JobState::kFailed: metrics.failed.add(); break;
    case JobState::kCancelled: metrics.cancelled.add(); break;
    case JobState::kTimedOut: metrics.timed_out.add(); break;
    default: break;
  }
  if (job->cancel_requested) {
    metrics.cancel_latency.observe(
        seconds_between(job->cancel_requested_at, job->finished_at));
  }
  if (job->trace) {
    job->trace->record({obs::Trace::span_id(job->trace->id(), "run", 0),
                        job->trace->parent(), "run", 0, run_seconds});
  }
}

void JobScheduler::note_terminal_locked(const JobPtr& job) {
  terminal_order_.push_back(job->id);
  // Retention bound: a long-lived daemon must not accumulate every job
  // (circuit + result + progress history) forever. Oldest-finished
  // jobs are forgotten first; live jobs are never in terminal_order_.
  while (terminal_order_.size() > options_.max_retained_jobs) {
    const std::uint64_t evicted_id = terminal_order_.front();
    jobs_.erase(evicted_id);
    terminal_order_.pop_front();
    // The per-state counters in stats_ were folded in at the terminal
    // transition, so forgetting the record loses no history — only the
    // eviction itself is worth counting.
    ++stats_.evicted;
    SchedulerMetrics::instance().evicted.add();
    if (options_.on_evict) {
      // Called under the scheduler lock (documented in
      // SchedulerOptions): the hook appends a journal record and must
      // not call back into the scheduler.
      try {
        options_.on_evict(evicted_id);
      } catch (...) {
      }
    }
  }
}

std::uint64_t JobScheduler::min_retained_id() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return jobs_.empty() ? next_id_ : jobs_.begin()->first;
}

double JobScheduler::estimate_seconds(const RunRequest& request) const {
  // Pure function of the request (the session's selector and cost model
  // are immutable after construction), so callable without the lock.
  try {
    const CircuitProfile profile = profile_circuit(request.circuit);
    const BackendSelector& selector = session_.selector();
    BackendId id = request.backend;
    if (!request.backend_name.empty()) {
      id = session_.registry().require(request.backend_name)->id();
    } else if (id == BackendId::kAuto) {
      id = selector.select(profile, request.repetitions).id;
    }
    if (id == BackendId::kCustom) return -1.0;  // no closed-form cost
    return selector.cost_model().predict_seconds(profile,
                                                 request.repetitions, id);
  } catch (...) {
    // Unknown backend, unroutable circuit, ... — admission lets it
    // through so the job fails later with its real error.
    return -1.0;
  }
}

JobScheduler::TenantState& JobScheduler::tenant_locked(
    const std::string& tenant) {
  const auto it = tenants_.find(tenant);
  if (it != tenants_.end()) return it->second;
  TenantState state;
  const auto quota = options_.tenant_quotas.find(tenant);
  state.quota = quota != options_.tenant_quotas.end() ? quota->second
                                                      : options_.default_quota;
  // Per-tenant series, registered on first sight (the registry
  // deduplicates by name, so several schedulers share them).
  auto& registry = obs::MetricsRegistry::global();
  const std::string label = metric_safe_label(tenant);
  state.submitted_metric = registry.counter(
      "bgls_tenant_submitted_total{tenant=\"" + label + "\"}",
      "Jobs admitted, by tenant");
  state.completed_metric = registry.counter(
      "bgls_tenant_completed_total{tenant=\"" + label + "\"}",
      "Jobs completed (cache hits included), by tenant");
  return tenants_.emplace(tenant, std::move(state)).first->second;
}

JobInfo JobScheduler::snapshot_locked(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.priority = job.priority;
  info.tenant = job.tenant;
  info.from_cache = job.from_cache;
  info.predicted_seconds = job.predicted_seconds;
  info.error = job.error;
  info.completed_repetitions = job.completed_repetitions;
  info.total_repetitions = job.request.repetitions;
  info.progress_updates = job.updates.size();
  info.result = job.result;
  info.start_order = job.start_order;
  info.retries = job.retries;
  info.trace = job.trace;
  const auto now = std::chrono::steady_clock::now();
  const auto started =
      job.start_order > 0 ? job.started_at : (is_terminal(job.state) ? job.finished_at : now);
  info.queue_seconds = seconds_between(job.submitted_at, started);
  if (job.start_order > 0) {
    info.run_seconds = seconds_between(
        job.started_at, is_terminal(job.state) ? job.finished_at : now);
  }
  return info;
}

JobScheduler::JobPtr JobScheduler::find_locked(std::uint64_t id) const {
  const auto it = jobs_.find(id);
  BGLS_REQUIRE(it != jobs_.end(),
               "unknown job id ", id,
               " (never submitted, or evicted by the retention bound)");
  return it->second;
}

}  // namespace bgls::service

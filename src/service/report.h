/// \file report.h
/// The canonical bgls_run JSON report, shared between the CLI and the
/// `bgls_serve` daemon's result endpoint so a job submitted over the
/// socket yields *byte-identical* output to `bgls_run` on the same
/// input and seed (pinned by the service end-to-end test).
///
/// The report contains only result-determining fields (seed, streams,
/// repetitions, backend, histograms, scheduling-independent counters),
/// so for a fixed seed it is byte-stable across runs, thread counts,
/// and CLI-vs-daemon transport.

#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "api/run_types.h"

namespace bgls::service {

/// The submission knobs echoed into the report (they determine the
/// sampled records, so they are part of the stable output).
struct RunReportContext {
  std::uint64_t repetitions = 0;
  std::uint64_t seed = 0;
  std::uint64_t rng_streams = 16;
  bool optimized = false;
  int num_qubits = 0;
};

/// Builds the context from the resolved request and its circuit width.
[[nodiscard]] RunReportContext report_context(const RunRequest& request,
                                              int num_qubits);

/// Writes the canonical report (pretty JSON + trailing newline).
void write_run_report(std::ostream& os, const RunReportContext& context,
                      const RunResult& result);

/// The report as a string (the daemon embeds it in a response field).
[[nodiscard]] std::string run_report_string(const RunReportContext& context,
                                            const RunResult& result);

}  // namespace bgls::service

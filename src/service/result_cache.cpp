#include "service/result_cache.h"

#include <cstring>
#include <utility>

#include "obs/metrics.h"

namespace bgls::service {
namespace {

/// Cache series: process-wide, like the scheduler's (several caches —
/// e.g. in tests — accumulate into the same series; per-instance
/// numbers live in ResultCache::Stats).
struct CacheMetrics {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter evictions;
  obs::Gauge entries;
  obs::Gauge bytes;

  CacheMetrics() {
    auto& registry = obs::MetricsRegistry::global();
    hits = registry.counter("bgls_cache_hits_total",
                            "Submissions answered from the result cache");
    misses = registry.counter(
        "bgls_cache_misses_total",
        "Cacheable submissions that had to sample (results are inserted "
        "on completion)");
    evictions = registry.counter(
        "bgls_cache_evictions_total",
        "Entries dropped by the LRU bounds (max_entries/max_total_bytes)");
    entries =
        registry.gauge("bgls_cache_entries", "Results currently cached");
    bytes = registry.gauge("bgls_cache_bytes",
                           "Approximate bytes held by cached results");
  }

  static CacheMetrics& instance() {
    static CacheMetrics metrics;
    return metrics;
  }
};

// --- Canonical binary serialization -----------------------------------
// Fixed-width little-endian-by-memcpy fields with explicit counts; the
// layout is unambiguous (every variable-length run is preceded by its
// length), so two requests serialize identically iff their
// result-determining fields are identical.

void append_u64(std::string& out, std::uint64_t value) {
  char bytes[sizeof(value)];
  std::memcpy(bytes, &value, sizeof(value));
  out.append(bytes, sizeof(value));
}

void append_f64(std::string& out, double value) {
  // Bit-exact: 0.1 vs 0.1+ulp are different circuits. (-0.0 and 0.0
  // hash apart — a spurious miss, never a wrong hit.)
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  append_u64(out, bits);
}

void append_str(std::string& out, const std::string& value) {
  append_u64(out, value.size());
  out.append(value);
}

void append_matrix(std::string& out, const Matrix& m) {
  append_u64(out, m.rows());
  append_u64(out, m.cols());
  for (const Complex& c : m.data()) {
    append_f64(out, c.real());
    append_f64(out, c.imag());
  }
}

/// Serializes one operation; false when it carries an unresolved
/// symbolic parameter (not runnable as-is, so never cacheable).
bool append_operation(std::string& out, const Operation& op) {
  const Gate& gate = op.gate();
  append_u64(out, static_cast<std::uint64_t>(gate.kind()));
  append_u64(out, static_cast<std::uint64_t>(gate.arity()));
  append_u64(out, op.qubits().size());
  for (const Qubit q : op.qubits()) {
    append_u64(out, static_cast<std::uint64_t>(q));
  }
  append_str(out, op.condition_key());
  if (gate.is_measurement()) {
    append_str(out, gate.measurement_key());
    return true;
  }
  if (gate.is_channel()) {
    const KrausChannel& channel = gate.channel();
    append_u64(out, channel.operators().size());
    for (const Matrix& kraus : channel.operators()) {
      append_matrix(out, kraus);
    }
    return true;
  }
  if (gate.is_parameterized()) return false;
  // The unitary pins every parameterized kind bit-exactly (kind alone
  // would alias Rz(0.1) with Rz(0.2)) and covers the fused kMatrix1/2
  // gates uniformly.
  append_matrix(out, gate.unitary());
  return true;
}

/// Estimated retained bytes of a result: the per-repetition records
/// dominate; keys and fixed fields get a flat allowance.
std::size_t estimated_bytes(const RunResult& result) {
  std::size_t bytes = 512;
  for (const std::string& key : result.measurements.keys()) {
    bytes += key.size() + 64;
    bytes += result.measurements.values(key).size() * sizeof(Bitstring);
  }
  return bytes;
}

}  // namespace

std::optional<std::string> ResultCache::key_for(const RunRequest& request) {
  // A resumed run's result depends on the checkpoint, not just the
  // request; checkpoint capture and progress streaming are observable
  // side effects a cache hit would silently skip.
  if (request.resume != nullptr) return std::nullopt;
  if (request.checkpoint.every > 0 || request.checkpoint.sink) {
    return std::nullopt;
  }
  if (request.progress.every > 0 || request.progress.sink) {
    return std::nullopt;
  }

  std::string key;
  key.reserve(256);
  append_u64(key, 1);  // layout version
  append_u64(key, request.repetitions);
  append_u64(key, request.seed);
  append_u64(key, request.num_rng_streams);
  append_u64(key, request.initial_state);
  // Backend addressing: name wins over id (the Session's resolution
  // order). Two spellings of the same backend ("sv" vs "statevector")
  // key apart — a spurious miss, never a wrong hit.
  append_u64(key, static_cast<std::uint64_t>(request.backend));
  append_str(key, request.backend_name);
  // Knobs that do (or conservatively may) shape the sampled records.
  // Thread count is deliberately excluded: reports are pinned
  // byte-identical across thread counts.
  append_u64(key, (request.optimize_circuit ? 1u : 0u) |
                      (request.disable_sample_parallelization ? 2u : 0u) |
                      (request.skip_diagonal_updates ? 4u : 0u) |
                      (request.two_level_batch_sharding ? 8u : 0u));
  append_u64(key, request.mps_options.max_bond_dim);
  append_f64(key, request.mps_options.cutoff);

  append_u64(key, static_cast<std::uint64_t>(request.circuit.num_qubits()));
  for (const auto& moment : request.circuit.moments()) {
    append_u64(key, 0xffffffffffffffffull);  // moment boundary
    append_u64(key, moment.operations().size());
    for (const Operation& op : moment.operations()) {
      if (!append_operation(key, op)) return std::nullopt;
    }
  }
  return key;
}

ResultCache::ResultCache(ResultCacheOptions options) : options_(options) {}

std::shared_ptr<const RunResult> ResultCache::lookup(const std::string& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    CacheMetrics::instance().misses.add();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  ++hits_;
  CacheMetrics::instance().hits.add();
  return it->second.result;
}

void ResultCache::insert(const std::string& key,
                         std::shared_ptr<const RunResult> result) {
  if (result == nullptr) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.count(key) != 0) return;  // identical by determinism
  lru_.push_front(key);
  Entry entry;
  entry.result = std::move(result);
  entry.bytes = key.size() + estimated_bytes(*entry.result);
  entry.lru_position = lru_.begin();
  total_bytes_ += entry.bytes;
  entries_.emplace(key, std::move(entry));
  evict_past_bounds_locked();
  CacheMetrics& metrics = CacheMetrics::instance();
  metrics.entries.set(static_cast<std::int64_t>(entries_.size()));
  metrics.bytes.set(static_cast<std::int64_t>(total_bytes_));
}

void ResultCache::evict_past_bounds_locked() {
  while (!lru_.empty() && (entries_.size() > options_.max_entries ||
                           total_bytes_ > options_.max_total_bytes)) {
    const std::string& victim = lru_.back();
    const auto it = entries_.find(victim);
    total_bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
    CacheMetrics::instance().evictions.add();
  }
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.hits = hits_;
  out.misses = misses_;
  out.evictions = evictions_;
  out.entries = entries_.size();
  out.bytes = total_bytes_;
  return out;
}

}  // namespace bgls::service

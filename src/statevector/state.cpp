#include "statevector/state.h"

#include <cmath>

#include "util/error.h"

namespace bgls {
namespace {

/// Kernels switch to OpenMP above this dimension; below it the fork/join
/// overhead dominates.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 14;

}  // namespace

StateVectorState::StateVectorState(int num_qubits, Bitstring initial)
    : num_qubits_(num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits < 31,
               "statevector supports 1..30 qubits, got ", num_qubits);
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  BGLS_REQUIRE(initial < amplitudes_.size(), "initial bitstring out of range");
  amplitudes_[initial] = Complex{1.0, 0.0};
}

double StateVectorState::probability(Bitstring b) const {
  BGLS_REQUIRE(b < amplitudes_.size(), "bitstring out of range");
  return std::norm(amplitudes_[b]);
}

void StateVectorState::apply(const Operation& op) {
  const Gate& gate = op.gate();
  BGLS_REQUIRE(gate.is_unitary(), "cannot apply non-unitary '", gate.name(),
               "' directly; measurements/channels go through the sampler");
  apply_matrix(gate.unitary(), op.qubits());
}

void StateVectorState::apply_matrix(const Matrix& m,
                                    std::span<const Qubit> qubits) {
  BGLS_REQUIRE(m.rows() == m.cols() &&
                   m.rows() == (std::size_t{1} << qubits.size()),
               "matrix dimension does not match qubit count");
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
  }
  switch (qubits.size()) {
    case 1:
      apply_single_qubit(m, qubits[0]);
      break;
    case 2:
      apply_two_qubit(m, qubits[0], qubits[1]);
      break;
    default:
      apply_generic(m, qubits);
  }
}

void StateVectorState::apply_single_qubit(const Matrix& m, Qubit q) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = amplitudes_.size();
  const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::int64_t num_pairs = static_cast<std::int64_t>(dim >> 1);
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t p = 0; p < num_pairs; ++p) {
    // Base index: insert a 0 at bit position q of the pair index.
    const std::size_t pp = static_cast<std::size_t>(p);
    const std::size_t i0 = ((pp & ~(stride - 1)) << 1) | (pp & (stride - 1));
    const std::size_t i1 = i0 | stride;
    const Complex a0 = amplitudes_[i0];
    const Complex a1 = amplitudes_[i1];
    amplitudes_[i0] = m00 * a0 + m01 * a1;
    amplitudes_[i1] = m10 * a0 + m11 * a1;
  }
}

void StateVectorState::apply_two_qubit(const Matrix& m, Qubit q0, Qubit q1) {
  // Gate-local index: q0 is the most significant bit.
  const std::size_t s0 = std::size_t{1} << q0;
  const std::size_t s1 = std::size_t{1} << q1;
  const std::size_t dim = amplitudes_.size();
  const std::size_t lo = std::min(s0, s1);
  const std::size_t hi = std::max(s0, s1);
  const std::int64_t num_groups = static_cast<std::int64_t>(dim >> 2);
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t g = 0; g < num_groups; ++g) {
    // Spread the group index around the two target bit positions.
    std::size_t base = static_cast<std::size_t>(g);
    base = ((base & ~(lo - 1)) << 1) | (base & (lo - 1));
    base = ((base & ~(hi - 1)) << 1) | (base & (hi - 1));
    const std::size_t i00 = base;
    const std::size_t i01 = base | s1;
    const std::size_t i10 = base | s0;
    const std::size_t i11 = base | s0 | s1;
    const Complex a00 = amplitudes_[i00];
    const Complex a01 = amplitudes_[i01];
    const Complex a10 = amplitudes_[i10];
    const Complex a11 = amplitudes_[i11];
    amplitudes_[i00] = m(0, 0) * a00 + m(0, 1) * a01 + m(0, 2) * a10 + m(0, 3) * a11;
    amplitudes_[i01] = m(1, 0) * a00 + m(1, 1) * a01 + m(1, 2) * a10 + m(1, 3) * a11;
    amplitudes_[i10] = m(2, 0) * a00 + m(2, 1) * a01 + m(2, 2) * a10 + m(2, 3) * a11;
    amplitudes_[i11] = m(3, 0) * a00 + m(3, 1) * a01 + m(3, 2) * a10 + m(3, 3) * a11;
  }
}

void StateVectorState::apply_generic(const Matrix& m,
                                     std::span<const Qubit> qubits) {
  const std::size_t k = qubits.size();
  const std::size_t block = std::size_t{1} << k;
  std::size_t support_mask = 0;
  for (const Qubit q : qubits) support_mask |= std::size_t{1} << q;

  std::vector<Complex> scratch(block);
  for (std::size_t base = 0; base < amplitudes_.size(); ++base) {
    if ((base & support_mask) != 0) continue;  // visit each group once
    // Gather group amplitudes; gate-local index has qubits[0] as MSB.
    for (std::size_t local = 0; local < block; ++local) {
      std::size_t idx = base;
      for (std::size_t j = 0; j < k; ++j) {
        if ((local >> (k - 1 - j)) & 1u) idx |= std::size_t{1} << qubits[j];
      }
      scratch[local] = amplitudes_[idx];
    }
    for (std::size_t row = 0; row < block; ++row) {
      Complex acc{0.0, 0.0};
      for (std::size_t col = 0; col < block; ++col) {
        acc += m(row, col) * scratch[col];
      }
      std::size_t idx = base;
      for (std::size_t j = 0; j < k; ++j) {
        if ((row >> (k - 1 - j)) & 1u) idx |= std::size_t{1} << qubits[j];
      }
      amplitudes_[idx] = acc;
    }
  }
}

void StateVectorState::project(std::span<const Qubit> qubits, Bitstring bits) {
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
    mask |= std::size_t{1} << q;
    if (get_bit(bits, q)) want |= std::size_t{1} << q;
  }
  double kept = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if ((i & mask) == want) {
      kept += std::norm(amplitudes_[i]);
    } else {
      amplitudes_[i] = Complex{0.0, 0.0};
    }
  }
  BGLS_REQUIRE(kept > 0.0, "projection onto zero-probability outcome");
  const double scale = 1.0 / std::sqrt(kept);
  for (auto& a : amplitudes_) a *= scale;
}

double StateVectorState::norm_squared() const {
  double acc = 0.0;
  for (const auto& a : amplitudes_) acc += std::norm(a);
  return acc;
}

void StateVectorState::renormalize() {
  const double n2 = norm_squared();
  BGLS_REQUIRE(n2 > 0.0, "cannot renormalize the zero vector");
  const double scale = 1.0 / std::sqrt(n2);
  for (auto& a : amplitudes_) a *= scale;
}

std::vector<double> StateVectorState::probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  const std::int64_t dim = static_cast<std::int64_t>(amplitudes_.size());
#pragma omp parallel for if (amplitudes_.size() >= kParallelThreshold) \
    schedule(static)
  for (std::int64_t i = 0; i < dim; ++i) {
    probs[static_cast<std::size_t>(i)] =
        std::norm(amplitudes_[static_cast<std::size_t>(i)]);
  }
  return probs;
}

double StateVectorState::marginal_one(Qubit q) const {
  BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
  const std::size_t bit = std::size_t{1} << q;
  double p1 = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if (i & bit) p1 += std::norm(amplitudes_[i]);
  }
  return p1;
}

Bitstring StateVectorState::sample(Rng& rng) const {
  const double target = rng.uniform() * norm_squared();
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < amplitudes_.size(); ++i) {
    acc += std::norm(amplitudes_[i]);
    if (target < acc) return i;
  }
  return amplitudes_.size() - 1;
}

double StateVectorState::max_abs_diff(const StateVectorState& other) const {
  BGLS_REQUIRE(num_qubits_ == other.num_qubits_,
               "comparing states of different width");
  double worst = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    worst = std::max(worst, std::abs(amplitudes_[i] - other.amplitudes_[i]));
  }
  return worst;
}

void apply_op(const Operation& op, StateVectorState& state, Rng& rng) {
  const Gate& gate = op.gate();
  if (gate.is_channel()) {
    // Quantum trajectory: sample a Kraus branch by its Born weight.
    const auto& ops = gate.channel().operators();
    std::vector<double> weights;
    weights.reserve(ops.size());
    for (const auto& k : ops) {
      StateVectorState branch = state;
      branch.apply_matrix(k, op.qubits());
      weights.push_back(branch.norm_squared());
    }
    const std::size_t chosen = rng.categorical(weights);
    state.apply_matrix(ops[chosen], op.qubits());
    state.renormalize();
    return;
  }
  state.apply(op);
}

double compute_probability(const StateVectorState& state, Bitstring b) {
  return state.probability(b);
}

void evolve(const Circuit& circuit, StateVectorState& state, Rng& rng) {
  for (const auto& moment : circuit.moments()) {
    for (const auto& op : moment.operations()) {
      if (op.gate().is_measurement()) continue;
      apply_op(op, state, rng);
    }
  }
}

}  // namespace bgls

#include "statevector/state.h"

#include <algorithm>
#include <cmath>

#include "statevector/kernels.h"
#include "util/error.h"

namespace bgls {
namespace {

/// Kernels switch to OpenMP above this dimension; below it the fork/join
/// overhead dominates.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 14;

}  // namespace

StateVectorState::StateVectorState(int num_qubits, Bitstring initial)
    : num_qubits_(num_qubits) {
  BGLS_REQUIRE(num_qubits >= 1 && num_qubits < 31,
               "statevector supports 1..30 qubits, got ", num_qubits);
  amplitudes_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  BGLS_REQUIRE(initial < amplitudes_.size(), "initial bitstring out of range");
  amplitudes_[initial] = Complex{1.0, 0.0};
}

double StateVectorState::probability(Bitstring b) const {
  BGLS_REQUIRE(b < amplitudes_.size(), "bitstring out of range");
  return std::norm(amplitudes_[b]);
}

void StateVectorState::apply(const Operation& op) {
  const Gate& gate = op.gate();
  BGLS_REQUIRE(gate.is_unitary(), "cannot apply non-unitary '", gate.name(),
               "' directly; measurements/channels go through the sampler");
  // Memoized per gate: the matrix is built and classified once, and
  // every later apply of this gate (or any copy of it) skips straight
  // to the shaped kernel.
  const std::shared_ptr<const kernels::CompiledMatrix> compiled =
      gate.compiled_unitary();
  check_targets(compiled->matrix, op.qubits());
  kernels::apply_matrix(amplitudes_, num_qubits_, *compiled, op.qubits());
}

void StateVectorState::apply_matrix(const Matrix& m,
                                    std::span<const Qubit> qubits) {
  check_targets(m, qubits);
  // Gate-class dispatch (kernels.h): diagonal, permutation, controlled
  // and dense matrices each take a kernel shaped for their structure.
  kernels::apply_matrix(amplitudes_, num_qubits_, m, qubits);
}

void StateVectorState::check_targets(const Matrix& m,
                                     std::span<const Qubit> qubits) const {
  BGLS_REQUIRE(m.rows() == m.cols() &&
                   m.rows() == (std::size_t{1} << qubits.size()),
               "matrix dimension does not match qubit count");
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
  }
}

void StateVectorState::project(std::span<const Qubit> qubits, Bitstring bits) {
  std::size_t mask = 0;
  std::size_t want = 0;
  for (const Qubit q : qubits) {
    BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
    mask |= std::size_t{1} << q;
    if (get_bit(bits, q)) want |= std::size_t{1} << q;
  }
  double kept = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if ((i & mask) == want) {
      kept += std::norm(amplitudes_[i]);
    } else {
      amplitudes_[i] = Complex{0.0, 0.0};
    }
  }
  BGLS_REQUIRE(kept > 0.0, "projection onto zero-probability outcome");
  const double scale = 1.0 / std::sqrt(kept);
  for (auto& a : amplitudes_) a *= scale;
}

double StateVectorState::norm_squared() const {
  double acc = 0.0;
  for (const auto& a : amplitudes_) acc += std::norm(a);
  return acc;
}

void StateVectorState::renormalize() {
  const double n2 = norm_squared();
  BGLS_REQUIRE(n2 > 0.0, "cannot renormalize the zero vector");
  const double scale = 1.0 / std::sqrt(n2);
  for (auto& a : amplitudes_) a *= scale;
}

std::vector<double> StateVectorState::probabilities() const {
  std::vector<double> probs(amplitudes_.size());
  const std::int64_t dim = static_cast<std::int64_t>(amplitudes_.size());
#pragma omp parallel for if (amplitudes_.size() >= kParallelThreshold) \
    schedule(static)
  for (std::int64_t i = 0; i < dim; ++i) {
    probs[static_cast<std::size_t>(i)] =
        std::norm(amplitudes_[static_cast<std::size_t>(i)]);
  }
  return probs;
}

double StateVectorState::marginal_one(Qubit q) const {
  BGLS_REQUIRE(q >= 0 && q < num_qubits_, "qubit ", q, " out of range");
  const std::size_t bit = std::size_t{1} << q;
  double p1 = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    if (i & bit) p1 += std::norm(amplitudes_[i]);
  }
  return p1;
}

Bitstring StateVectorState::sample(Rng& rng) const {
  // Allocation-free single draw: one scan with early exit. Same
  // stopping rule as sample_n's inverse-CDF search (first i with
  // target < cdf[i]), so the two agree bit for bit per uniform drawn.
  const double target = rng.uniform() * norm_squared();
  double acc = 0.0;
  for (std::size_t i = 0; i + 1 < amplitudes_.size(); ++i) {
    acc += std::norm(amplitudes_[i]);
    if (target < acc) return i;
  }
  return amplitudes_.size() - 1;
}

std::vector<Bitstring> StateVectorState::sample_n(std::uint64_t count,
                                                  Rng& rng) const {
  // One O(2^n) probabilities pass builds the CDF; each draw is then an
  // O(n) inverse-CDF binary search instead of another O(2^n) scan.
  std::vector<double> cdf(amplitudes_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    acc += std::norm(amplitudes_[i]);
    cdf[i] = acc;
  }
  const double total = cdf.back();
  BGLS_REQUIRE(total > 0.0, "cannot sample from the zero vector");
  std::vector<Bitstring> draws(count);
  for (auto& draw : draws) {
    const double target = rng.uniform() * total;
    // First index with target < cdf[i] — identical to the sequential
    // scan's stopping rule, so draws match the pre-CDF implementation
    // bit for bit (plateaus from zero-probability entries are skipped).
    const auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
    draw = it == cdf.end() ? amplitudes_.size() - 1
                           : static_cast<Bitstring>(it - cdf.begin());
  }
  return draws;
}

double StateVectorState::max_abs_diff(const StateVectorState& other) const {
  BGLS_REQUIRE(num_qubits_ == other.num_qubits_,
               "comparing states of different width");
  double worst = 0.0;
  for (std::size_t i = 0; i < amplitudes_.size(); ++i) {
    worst = std::max(worst, std::abs(amplitudes_[i] - other.amplitudes_[i]));
  }
  return worst;
}

void apply_op(const Operation& op, StateVectorState& state, Rng& rng) {
  const Gate& gate = op.gate();
  if (gate.is_channel()) {
    // Quantum trajectory: sample a Kraus branch by its Born weight.
    const auto& ops = gate.channel().operators();
    std::vector<double> weights;
    weights.reserve(ops.size());
    for (const auto& k : ops) {
      StateVectorState branch = state;
      branch.apply_matrix(k, op.qubits());
      weights.push_back(branch.norm_squared());
    }
    const std::size_t chosen = rng.categorical(weights);
    state.apply_matrix(ops[chosen], op.qubits());
    state.renormalize();
    return;
  }
  state.apply(op);
}

double compute_probability(const StateVectorState& state, Bitstring b) {
  return state.probability(b);
}

void evolve(const Circuit& circuit, StateVectorState& state, Rng& rng) {
  for (const auto& moment : circuit.moments()) {
    for (const auto& op : moment.operations()) {
      if (op.gate().is_measurement()) continue;
      apply_op(op, state, rng);
    }
  }
}

}  // namespace bgls

#include "statevector/kernels.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/metrics.h"

#ifdef BGLS_HAVE_OPENMP
#include <omp.h>
#endif
#if defined(BGLS_HAVE_AVX2) && defined(__AVX2__)
#include <immintrin.h>
#endif

namespace bgls::kernels {
namespace {

/// Kernels switch to OpenMP above this dimension; below it the
/// fork/join overhead dominates.
constexpr std::size_t kParallelThreshold = std::size_t{1} << 14;

/// Specialized kernels cover gates up to this arity (the library's
/// kMaxGateArity); wider matrices take the generic gather path.
constexpr std::size_t kMaxKernelArity = 3;

bool env_force_generic() {
  const char* value = std::getenv("BGLS_FORCE_GENERIC_KERNELS");
  return value != nullptr && value[0] != '\0' &&
         !(value[0] == '0' && value[1] == '\0');
}

std::atomic<bool> g_force_generic{env_force_generic()};

/// True when a pass over `dim` amplitudes should use an OpenMP team:
/// large enough to amortize fork/join, and more than one thread
/// available (on a one-thread budget the plain nests are faster —
/// outlined OpenMP regions inhibit some vectorization).
bool use_openmp(std::size_t dim) {
#ifdef BGLS_HAVE_OPENMP
  return dim >= kParallelThreshold && omp_get_max_threads() > 1;
#else
  (void)dim;
  return false;
#endif
}

/// Inserts a zero bit at each of the (ascending) strides, spreading the
/// compact group index `g` into an amplitude base index.
inline std::size_t expand_index(std::size_t g,
                                std::span<const std::size_t> strides) {
  for (const std::size_t s : strides) {
    g = ((g & ~(s - 1)) << 1) | (g & (s - 1));
  }
  return g;
}

/// Ascending strides of the gate's qubits plus any control bits, used
/// to enumerate group base indices.
struct Strides {
  std::array<std::size_t, kMaxKernelArity> values{};
  std::size_t count = 0;

  [[nodiscard]] std::span<const std::size_t> span() const {
    return {values.data(), count};
  }

  void add(std::size_t stride) { values[count++] = stride; }
  void add_mask_bits(std::size_t mask) {
    while (mask != 0) {
      add(mask & (0 - mask));
      mask &= mask - 1;
    }
  }
  // Insertion sort instead of std::sort: the array never exceeds
  // kMaxKernelArity entries (insertion sort wins at that size), and the
  // inlined libstdc++ sort trips GCC 12's bogus -Warray-bounds under
  // the sanitizer build.
  void sort() {
    const std::size_t n = std::min(count, values.size());
    for (std::size_t i = 1; i < n; ++i) {
      const std::size_t key = values[i];
      std::size_t j = i;
      for (; j > 0 && values[j - 1] > key; --j) values[j] = values[j - 1];
      values[j] = key;
    }
  }
};

inline bool is_one(const Complex& z) { return z == Complex{1.0, 0.0}; }

// --- Generic dense reference paths (pre-specialization code) ------------

void apply_generic_1q(std::span<Complex> amps, int q, const Matrix& m) {
  const std::size_t stride = std::size_t{1} << q;
  const std::size_t dim = amps.size();
  const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);
  const std::int64_t num_pairs = static_cast<std::int64_t>(dim >> 1);
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t p = 0; p < num_pairs; ++p) {
    // Base index: insert a 0 at bit position q of the pair index.
    const std::size_t pp = static_cast<std::size_t>(p);
    const std::size_t i0 = ((pp & ~(stride - 1)) << 1) | (pp & (stride - 1));
    const std::size_t i1 = i0 | stride;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    amps[i0] = m00 * a0 + m01 * a1;
    amps[i1] = m10 * a0 + m11 * a1;
  }
}

void apply_generic_2q(std::span<Complex> amps, int q0, int q1,
                      const Matrix& m) {
  // Gate-local index: q0 is the most significant bit.
  const std::size_t s0 = std::size_t{1} << q0;
  const std::size_t s1 = std::size_t{1} << q1;
  const std::size_t dim = amps.size();
  const std::size_t lo = std::min(s0, s1);
  const std::size_t hi = std::max(s0, s1);
  const std::int64_t num_groups = static_cast<std::int64_t>(dim >> 2);
#pragma omp parallel for if (dim >= kParallelThreshold) schedule(static)
  for (std::int64_t g = 0; g < num_groups; ++g) {
    // Spread the group index around the two target bit positions.
    std::size_t base = static_cast<std::size_t>(g);
    base = ((base & ~(lo - 1)) << 1) | (base & (lo - 1));
    base = ((base & ~(hi - 1)) << 1) | (base & (hi - 1));
    const std::size_t i00 = base;
    const std::size_t i01 = base | s1;
    const std::size_t i10 = base | s0;
    const std::size_t i11 = base | s0 | s1;
    const Complex a00 = amps[i00];
    const Complex a01 = amps[i01];
    const Complex a10 = amps[i10];
    const Complex a11 = amps[i11];
    amps[i00] = m(0, 0) * a00 + m(0, 1) * a01 + m(0, 2) * a10 + m(0, 3) * a11;
    amps[i01] = m(1, 0) * a00 + m(1, 1) * a01 + m(1, 2) * a10 + m(1, 3) * a11;
    amps[i10] = m(2, 0) * a00 + m(2, 1) * a01 + m(2, 2) * a10 + m(2, 3) * a11;
    amps[i11] = m(3, 0) * a00 + m(3, 1) * a01 + m(3, 2) * a10 + m(3, 3) * a11;
  }
}

void apply_generic_k(std::span<Complex> amps, std::span<const int> qubits,
                     const Matrix& m) {
  const std::size_t k = qubits.size();
  const std::size_t block = std::size_t{1} << k;
  std::size_t support_mask = 0;
  for (const int q : qubits) support_mask |= std::size_t{1} << q;

  std::vector<Complex> scratch(block);
  for (std::size_t base = 0; base < amps.size(); ++base) {
    if ((base & support_mask) != 0) continue;  // visit each group once
    // Gather group amplitudes; gate-local index has qubits[0] as MSB.
    for (std::size_t local = 0; local < block; ++local) {
      std::size_t idx = base;
      for (std::size_t j = 0; j < k; ++j) {
        if ((local >> (k - 1 - j)) & 1u) idx |= std::size_t{1} << qubits[j];
      }
      scratch[local] = amps[idx];
    }
    for (std::size_t row = 0; row < block; ++row) {
      Complex acc{0.0, 0.0};
      for (std::size_t col = 0; col < block; ++col) {
        acc += m(row, col) * scratch[col];
      }
      std::size_t idx = base;
      for (std::size_t j = 0; j < k; ++j) {
        if ((row >> (k - 1 - j)) & 1u) idx |= std::size_t{1} << qubits[j];
      }
      amps[idx] = acc;
    }
  }
}

void apply_generic(std::span<Complex> amps, const Matrix& m,
                   std::span<const int> qubits) {
  switch (qubits.size()) {
    case 1:
      apply_generic_1q(amps, qubits[0], m);
      break;
    case 2:
      apply_generic_2q(amps, qubits[0], qubits[1], m);
      break;
    default:
      apply_generic_k(amps, qubits, m);
  }
}

// --- Gate-local offset table --------------------------------------------

/// offsets[local] = OR of the strides of the qubits set in the
/// gate-local index `local` (qubits[0] = MSB convention).
std::array<std::size_t, 8> local_offsets(std::span<const int> qubits) {
  const std::size_t k = qubits.size();
  std::array<std::size_t, 8> offsets{};
  for (std::size_t local = 0; local < (std::size_t{1} << k); ++local) {
    std::size_t offset = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if ((local >> (k - 1 - j)) & 1u) offset |= std::size_t{1} << qubits[j];
    }
    offsets[local] = offset;
  }
  return offsets;
}

// --- Diagonal kernel ----------------------------------------------------

void apply_diagonal(std::span<Complex> amps, std::span<const int> qubits,
                    std::span<const Complex> phases) {
  const std::size_t dim = amps.size();
  const std::size_t k = qubits.size();

  if (k == 1) {
    const Complex d0 = phases[0], d1 = phases[1];
    const bool skip0 = is_one(d0), skip1 = is_one(d1);
    if (skip0 && skip1) return;  // identity
    const std::size_t s = std::size_t{1} << qubits[0];
#ifdef BGLS_HAVE_OPENMP
    if (use_openmp(dim)) {
      const std::int64_t idim = static_cast<std::int64_t>(dim);
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < idim; ++i) {
        const std::size_t ii = static_cast<std::size_t>(i);
        if (ii & s) {
          if (!skip1) amps[ii] *= d1;
        } else {
          if (!skip0) amps[ii] *= d0;
        }
      }
      return;
    }
#endif
    // Phase-multiply over contiguous runs; halves with phase 1 are
    // skipped outright (T, S, Rz with one trivial phase, ...).
    for (std::size_t base = 0; base < dim; base += 2 * s) {
      if (!skip0) {
        for (std::size_t i = base; i < base + s; ++i) amps[i] *= d0;
      }
      if (!skip1) {
        for (std::size_t i = base + s; i < base + 2 * s; ++i) amps[i] *= d1;
      }
    }
    return;
  }

  const std::array<std::size_t, 8> offsets = local_offsets(qubits);
  const std::size_t block = std::size_t{1} << k;
  std::array<std::uint8_t, 8> worklist{};
  std::size_t work_count = 0;
  for (std::size_t local = 0; local < block; ++local) {
    if (!is_one(phases[local])) {
      worklist[work_count++] = static_cast<std::uint8_t>(local);
    }
  }
  if (work_count == 0) return;  // identity

  Strides strides;
  for (const int q : qubits) strides.add(std::size_t{1} << q);
  strides.sort();
  const std::int64_t num_groups = static_cast<std::int64_t>(dim >> k);

  if (work_count == 1) {
    // Single non-trivial phase (CZ, CPhase, CCZ): touch only the
    // indices whose support bits match that one local pattern —
    // 2^n / 2^k amplitudes instead of 2^n.
    const std::size_t offset = offsets[worklist[0]];
    const Complex phase = phases[worklist[0]];
#ifdef BGLS_HAVE_OPENMP
#pragma omp parallel for if (use_openmp(dim)) schedule(static)
#endif
    for (std::int64_t g = 0; g < num_groups; ++g) {
      amps[expand_index(static_cast<std::size_t>(g), strides.span()) |
           offset] *= phase;
    }
    return;
  }

#ifdef BGLS_HAVE_OPENMP
#pragma omp parallel for if (use_openmp(dim)) schedule(static)
#endif
  for (std::int64_t g = 0; g < num_groups; ++g) {
    const std::size_t base =
        expand_index(static_cast<std::size_t>(g), strides.span());
    for (std::size_t w = 0; w < work_count; ++w) {
      const std::size_t local = worklist[w];
      amps[base | offsets[local]] *= phases[local];
    }
  }
}

// --- Permutation kernel -------------------------------------------------

void apply_permutation(std::span<Complex> amps, std::span<const int> qubits,
                       std::span<const std::uint8_t> perm,
                       std::span<const Complex> factors) {
  const std::size_t dim = amps.size();
  const std::size_t k = qubits.size();
  const std::size_t block = std::size_t{1} << k;

  if (k == 1) {
    // perm is either identity (then it was classified diagonal) or the
    // swap: new[i0] = f0 * old[i1], new[i1] = f1 * old[i0].
    const Complex f0 = factors[0], f1 = factors[1];
    const bool pure_swap = is_one(f0) && is_one(f1);
    const std::size_t s = std::size_t{1} << qubits[0];
#ifdef BGLS_HAVE_OPENMP
    if (use_openmp(dim)) {
      const std::int64_t num_pairs = static_cast<std::int64_t>(dim >> 1);
#pragma omp parallel for schedule(static)
      for (std::int64_t p = 0; p < num_pairs; ++p) {
        const std::size_t pp = static_cast<std::size_t>(p);
        const std::size_t i0 =
            ((pp & ~(s - 1)) << 1) | (pp & (s - 1));
        const std::size_t i1 = i0 | s;
        const Complex a0 = amps[i0];
        if (pure_swap) {
          amps[i0] = amps[i1];
          amps[i1] = a0;
        } else {
          amps[i0] = f0 * amps[i1];
          amps[i1] = f1 * a0;
        }
      }
      return;
    }
#endif
    for (std::size_t base = 0; base < dim; base += 2 * s) {
      if (pure_swap) {
        // X / CX-target-style runs reduce to a block swap.
        std::swap_ranges(amps.begin() + static_cast<std::ptrdiff_t>(base),
                         amps.begin() + static_cast<std::ptrdiff_t>(base + s),
                         amps.begin() + static_cast<std::ptrdiff_t>(base + s));
      } else {
        for (std::size_t i = base; i < base + s; ++i) {
          const Complex a0 = amps[i];
          amps[i] = f0 * amps[i + s];
          amps[i + s] = f1 * a0;
        }
      }
    }
    return;
  }

  const std::array<std::size_t, 8> offsets = local_offsets(qubits);

  // Decompose into cycles once; fixed points with factor 1 cost nothing
  // (CX touches only the c=1 half, CCX only the c0=c1=1 quarter).
  std::array<std::uint8_t, 8> scaled_fixed{};
  std::size_t num_scaled_fixed = 0;
  std::array<std::array<std::uint8_t, 8>, 4> cycles{};
  std::array<std::size_t, 4> cycle_len{};
  std::size_t num_cycles = 0;
  std::array<bool, 8> visited{};
  for (std::size_t start = 0; start < block; ++start) {
    if (visited[start]) continue;
    visited[start] = true;
    if (perm[start] == start) {
      if (!is_one(factors[start])) {
        scaled_fixed[num_scaled_fixed++] = static_cast<std::uint8_t>(start);
      }
      continue;
    }
    auto& cycle = cycles[num_cycles];
    std::size_t len = 0;
    std::size_t current = start;
    do {
      cycle[len++] = static_cast<std::uint8_t>(current);
      visited[current] = true;
      current = perm[current];
    } while (current != start);
    cycle_len[num_cycles++] = len;
  }

  Strides strides;
  for (const int q : qubits) strides.add(std::size_t{1} << q);
  strides.sort();
  const std::int64_t num_groups = static_cast<std::int64_t>(dim >> k);
#ifdef BGLS_HAVE_OPENMP
#pragma omp parallel for if (use_openmp(dim)) schedule(static)
#endif
  for (std::int64_t g = 0; g < num_groups; ++g) {
    const std::size_t base =
        expand_index(static_cast<std::size_t>(g), strides.span());
    for (std::size_t f = 0; f < num_scaled_fixed; ++f) {
      const std::size_t local = scaled_fixed[f];
      amps[base | offsets[local]] *= factors[local];
    }
    for (std::size_t c = 0; c < num_cycles; ++c) {
      const auto& cycle = cycles[c];
      const std::size_t len = cycle_len[c];
      // new[r] = factors[r] * old[perm[r]] along the cycle.
      const Complex head = amps[base | offsets[cycle[0]]];
      for (std::size_t t = 0; t + 1 < len; ++t) {
        const Complex value = amps[base | offsets[cycle[t + 1]]];
        amps[base | offsets[cycle[t]]] =
            is_one(factors[cycle[t]]) ? value : factors[cycle[t]] * value;
      }
      const std::size_t tail = cycle[len - 1];
      amps[base | offsets[tail]] =
          is_one(factors[tail]) ? head : factors[tail] * head;
    }
  }
}

// --- Dense kernels ------------------------------------------------------

bool matrix_is_real(const Matrix& m) {
  for (const Complex& entry : m.data()) {
    if (entry.imag() != 0.0) return false;
  }
  return true;
}

/// Runs body(base, j) over the blocked 2-level iteration space, through
/// an OpenMP collapse(2) region when `parallel` and a plain nest
/// otherwise. Both nests execute identical per-(base, j) arithmetic —
/// only the outlining differs — so results are bit-identical between
/// them (and across thread counts), while the serial nest keeps the
/// compiler's full vectorization of the hot inner loop.
template <typename Body>
inline void blocked_loop(std::size_t outer_end, std::size_t outer_step,
                         std::size_t inner_count, std::size_t inner_step,
                         bool parallel, Body&& body) {
#ifdef BGLS_HAVE_OPENMP
  if (parallel) {
#pragma omp parallel for collapse(2) schedule(static)
    for (std::size_t base = 0; base < outer_end; base += outer_step) {
      for (std::size_t j = 0; j < inner_count; j += inner_step) {
        body(base, j);
      }
    }
    return;
  }
#else
  (void)parallel;
#endif
  for (std::size_t base = 0; base < outer_end; base += outer_step) {
    for (std::size_t j = 0; j < inner_count; j += inner_step) {
      body(base, j);
    }
  }
}

#if defined(BGLS_HAVE_AVX2) && defined(__AVX2__)
/// Complex multiply of two packed complex<double> by the broadcast
/// scalar (mr, mi): re' = re*mr - im*mi, im' = re*mi + im*mr.
inline __m256d cmul(__m256d a, __m256d mr, __m256d mi) {
  const __m256d swapped = _mm256_permute_pd(a, 0x5);
  return _mm256_fmaddsub_pd(a, mr, _mm256_mul_pd(swapped, mi));
}
#endif

/// Dense 1q butterfly over [base, base + s) × [base + s, base + 2s)
/// runs; `fixed_mask` (control bits forced to 1) restricts the space.
void apply_dense_1q(std::span<Complex> amps, int q, const Matrix& m,
                    std::size_t fixed_mask) {
  const std::size_t dim = amps.size();
  const std::size_t s = std::size_t{1} << q;
  const Complex m00 = m(0, 0), m01 = m(0, 1), m10 = m(1, 0), m11 = m(1, 1);

  if (fixed_mask != 0) {
    // Controlled dense: enumerate only the bases with every control 1.
    Strides strides;
    strides.add(s);
    strides.add_mask_bits(fixed_mask);
    strides.sort();
    const std::int64_t num_groups =
        static_cast<std::int64_t>(dim >> strides.count);
#ifdef BGLS_HAVE_OPENMP
#pragma omp parallel for if (use_openmp(dim)) schedule(static)
#endif
    for (std::int64_t g = 0; g < num_groups; ++g) {
      const std::size_t i0 =
          expand_index(static_cast<std::size_t>(g), strides.span()) |
          fixed_mask;
      const std::size_t i1 = i0 | s;
      const Complex a0 = amps[i0];
      const Complex a1 = amps[i1];
      amps[i0] = m00 * a0 + m01 * a1;
      amps[i1] = m10 * a0 + m11 * a1;
    }
    return;
  }

  // One loop shape per arithmetic form below, distributed by
  // blocked_loop: every (run, offset) iteration performs identical
  // arithmetic whatever the thread count, so OpenMP never changes a
  // bit. (With AVX2 the FMA rounding differs from the generic path —
  // an explicit opt-in — but stays thread-count-invariant too.)
  const bool parallel = use_openmp(dim);

  if (matrix_is_real(m)) {
    // Real coefficients act identically on the interleaved re/im
    // doubles: half the flops of the complex butterfly, and a
    // unit-stride loop the compiler vectorizes.
    auto* d = reinterpret_cast<double*>(amps.data());
    const double r00 = m00.real(), r01 = m01.real();
    const double r10 = m10.real(), r11 = m11.real();
    const std::size_t run = 2 * s;  // doubles per amplitude run
    blocked_loop(2 * dim, 2 * run, run, 1, parallel,
                 [=](std::size_t base, std::size_t j) {
                   double* lo = d + base;
                   double* hi = lo + run;
                   const double a0 = lo[j];
                   const double a1 = hi[j];
                   lo[j] = r00 * a0 + r01 * a1;
                   hi[j] = r10 * a0 + r11 * a1;
                 });
    return;
  }

#if defined(BGLS_HAVE_AVX2) && defined(__AVX2__)
  if (s >= 2) {
    const __m256d m00r = _mm256_set1_pd(m00.real());
    const __m256d m00i = _mm256_set1_pd(m00.imag());
    const __m256d m01r = _mm256_set1_pd(m01.real());
    const __m256d m01i = _mm256_set1_pd(m01.imag());
    const __m256d m10r = _mm256_set1_pd(m10.real());
    const __m256d m10i = _mm256_set1_pd(m10.imag());
    const __m256d m11r = _mm256_set1_pd(m11.real());
    const __m256d m11i = _mm256_set1_pd(m11.imag());
    auto* d = reinterpret_cast<double*>(amps.data());
    const std::size_t run = 2 * s;
    // Two complex per vector (j steps by 4 doubles).
    blocked_loop(
        2 * dim, 2 * run, run, 4, parallel,
        [=](std::size_t base, std::size_t j) {
          double* lo = d + base;
          double* hi = lo + run;
          const __m256d a0 = _mm256_loadu_pd(lo + j);
          const __m256d a1 = _mm256_loadu_pd(hi + j);
          _mm256_storeu_pd(lo + j, _mm256_add_pd(cmul(a0, m00r, m00i),
                                                 cmul(a1, m01r, m01i)));
          _mm256_storeu_pd(hi + j, _mm256_add_pd(cmul(a0, m10r, m10i),
                                                 cmul(a1, m11r, m11i)));
        });
    return;
  }
#endif

  // Complex butterfly over contiguous runs: the inner loop is
  // unit-stride, so loads/stores stream and the entries stay hoisted.
  Complex* a = amps.data();
  blocked_loop(dim, 2 * s, s, 1, parallel,
               [=](std::size_t base, std::size_t j) {
                 const std::size_t i = base + j;
                 const Complex a0 = a[i];
                 const Complex a1 = a[i + s];
                 a[i] = m00 * a0 + m01 * a1;
                 a[i + s] = m10 * a0 + m11 * a1;
               });
}

/// Dense 2q update with hoisted entries and cache-blocked low/high
/// stride iteration; `fixed_mask` restricts to the controlled subspace.
void apply_dense_2q(std::span<Complex> amps, int q0, int q1, const Matrix& m,
                    std::size_t fixed_mask) {
  const std::size_t dim = amps.size();
  const std::size_t s0 = std::size_t{1} << q0;
  const std::size_t s1 = std::size_t{1} << q1;
  std::array<Complex, 16> e;
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) e[4 * r + c] = m(r, c);
  }

  const auto update4 = [&](std::size_t base) {
    const std::size_t i00 = base;
    const std::size_t i01 = base | s1;
    const std::size_t i10 = base | s0;
    const std::size_t i11 = base | s0 | s1;
    const Complex a00 = amps[i00];
    const Complex a01 = amps[i01];
    const Complex a10 = amps[i10];
    const Complex a11 = amps[i11];
    amps[i00] = e[0] * a00 + e[1] * a01 + e[2] * a10 + e[3] * a11;
    amps[i01] = e[4] * a00 + e[5] * a01 + e[6] * a10 + e[7] * a11;
    amps[i10] = e[8] * a00 + e[9] * a01 + e[10] * a10 + e[11] * a11;
    amps[i11] = e[12] * a00 + e[13] * a01 + e[14] * a10 + e[15] * a11;
  };

  if (fixed_mask != 0) {
    Strides strides;
    strides.add(s0);
    strides.add(s1);
    strides.add_mask_bits(fixed_mask);
    strides.sort();
    const std::int64_t num_groups =
        static_cast<std::int64_t>(dim >> strides.count);
#ifdef BGLS_HAVE_OPENMP
#pragma omp parallel for if (use_openmp(dim)) schedule(static)
#endif
    for (std::int64_t g = 0; g < num_groups; ++g) {
      update4(expand_index(static_cast<std::size_t>(g), strides.span()) |
              fixed_mask);
    }
    return;
  }

  // As in apply_dense_1q: one loop shape per arithmetic form, with the
  // cache blocks themselves distributed by blocked_loop so thread count
  // never changes a bit.
  const std::size_t lo = std::min(s0, s1);
  const std::size_t hi = std::max(s0, s1);
  const std::size_t blocks_per_row = hi / (2 * lo);  // inner b-blocks
  const bool parallel = use_openmp(dim);

  if (matrix_is_real(m)) {
    std::array<double, 16> r;
    for (std::size_t j = 0; j < 16; ++j) r[j] = e[j].real();
    auto* d = reinterpret_cast<double*>(amps.data());
    const std::size_t dlo = 2 * lo, ds0 = 2 * s0, ds1 = 2 * s1;
    blocked_loop(
        2 * dim, 4 * hi, blocks_per_row, 1, parallel,
        [&](std::size_t a, std::size_t block) {
          double* p00 = d + a + block * 2 * dlo;
          double* p01 = p00 + ds1;
          double* p10 = p00 + ds0;
          double* p11 = p00 + ds0 + ds1;
          for (std::size_t j = 0; j < dlo; ++j) {
            const double a00 = p00[j], a01 = p01[j];
            const double a10 = p10[j], a11 = p11[j];
            p00[j] = r[0] * a00 + r[1] * a01 + r[2] * a10 + r[3] * a11;
            p01[j] = r[4] * a00 + r[5] * a01 + r[6] * a10 + r[7] * a11;
            p10[j] = r[8] * a00 + r[9] * a01 + r[10] * a10 + r[11] * a11;
            p11[j] = r[12] * a00 + r[13] * a01 + r[14] * a10 + r[15] * a11;
          }
        });
    return;
  }

  blocked_loop(dim, 2 * hi, blocks_per_row, 1, parallel,
               [&](std::size_t a, std::size_t block) {
                 const std::size_t b = a + block * 2 * lo;
                 for (std::size_t i = b; i < b + lo; ++i) update4(i);
               });
}

}  // namespace

// --- Classification -----------------------------------------------------

namespace {

bool classify_diagonal(const Matrix& m, Classification& out) {
  const std::size_t dim = m.rows();
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if (r != c && m(r, c) != Complex{0.0, 0.0}) return false;
    }
  }
  out.cls = GateClass::kDiagonal;
  out.phases.resize(dim);
  for (std::size_t r = 0; r < dim; ++r) out.phases[r] = m(r, r);
  return true;
}

bool classify_permutation(const Matrix& m, Classification& out) {
  // Validate on the stack first (dim <= 8 on the kernel path) so the
  // common dense-gate rejection allocates nothing.
  const std::size_t dim = m.rows();
  if (dim > 8) return false;  // beyond kernel arity; dense path handles it
  std::array<std::uint8_t, 8> perm{};
  std::size_t columns_seen = 0;
  for (std::size_t r = 0; r < dim; ++r) {
    std::size_t nonzero_col = dim;
    for (std::size_t c = 0; c < dim; ++c) {
      if (m(r, c) != Complex{0.0, 0.0}) {
        if (nonzero_col != dim) return false;  // two nonzeros in a row
        nonzero_col = c;
      }
    }
    if (nonzero_col == dim) return false;  // zero row
    if (columns_seen & (std::size_t{1} << nonzero_col)) return false;
    columns_seen |= std::size_t{1} << nonzero_col;
    perm[r] = static_cast<std::uint8_t>(nonzero_col);
  }
  out.cls = GateClass::kPermutation;
  out.perm.assign(perm.begin(), perm.begin() + static_cast<std::ptrdiff_t>(dim));
  out.factors.resize(dim);
  for (std::size_t r = 0; r < dim; ++r) out.factors[r] = m(r, perm[r]);
  return true;
}

/// True when gate-local bit `b` acts as a control of `m`: every entry
/// in a row or column with bit b clear matches the identity.
bool is_control_bit(const Matrix& m, std::size_t b) {
  const std::size_t dim = m.rows();
  for (std::size_t r = 0; r < dim; ++r) {
    for (std::size_t c = 0; c < dim; ++c) {
      if (((r >> b) & 1u) && ((c >> b) & 1u)) continue;
      const Complex expected = r == c ? Complex{1.0, 0.0} : Complex{0.0, 0.0};
      if (m(r, c) != expected) return false;
    }
  }
  return true;
}

/// The sub-block of `m` on the subspace where bit `b` reads 1.
Matrix strip_control_bit(const Matrix& m, std::size_t b) {
  const std::size_t half = m.rows() >> 1;
  const std::size_t low = (std::size_t{1} << b) - 1;
  Matrix inner(half, half);
  for (std::size_t r = 0; r < half; ++r) {
    const std::size_t rf = ((r & ~low) << 1) | (std::size_t{1} << b) |
                           (r & low);
    for (std::size_t c = 0; c < half; ++c) {
      const std::size_t cf = ((c & ~low) << 1) | (std::size_t{1} << b) |
                             (c & low);
      inner(r, c) = m(rf, cf);
    }
  }
  return inner;
}

}  // namespace

Classification classify(const Matrix& m) {
  Classification out;
  if (classify_diagonal(m, out)) return out;
  if (classify_permutation(m, out)) return out;
  if (m.rows() > (std::size_t{1} << kMaxKernelArity)) return out;  // dense

  // Greedily strip control qubits. A matrix that is neither diagonal
  // nor a permutation but has control structure always ends in a dense
  // inner block (identity blocks + diagonal/permutation inner would
  // have made the whole matrix diagonal/permutation). `m` is only
  // copied once a control is actually found, so the common dense case
  // (H, rotations, fused products) classifies allocation-free.
  std::size_t k = 0;
  while ((std::size_t{1} << k) < m.rows()) ++k;
  Matrix stripped_block;
  const Matrix* current = &m;
  std::array<std::size_t, 8> positions{};  // current bit -> original list pos
  for (std::size_t j = 0; j < k; ++j) positions[j] = j;
  std::uint32_t control_positions = 0;
  std::size_t kk = k;
  while (kk >= 2) {
    bool stripped = false;
    for (std::size_t j = 0; j < kk; ++j) {
      const std::size_t b = kk - 1 - j;  // list position j = bit kk-1-j
      if (is_control_bit(*current, b)) {
        control_positions |= std::uint32_t{1} << positions[j];
        stripped_block = strip_control_bit(*current, b);
        current = &stripped_block;
        for (std::size_t t = j; t + 1 < kk; ++t) positions[t] = positions[t + 1];
        --kk;
        stripped = true;
        break;
      }
    }
    if (!stripped) break;
  }
  if (control_positions != 0) {
    out.cls = GateClass::kControlled;
    out.control_positions = control_positions;
    out.inner = std::move(stripped_block);
    return out;
  }
  out.cls = GateClass::kDense;
  return out;
}

// --- Dispatch -----------------------------------------------------------

namespace {

/// Routes an already classified matrix to its shaped kernel (shared by
/// both public apply_matrix overloads).
void dispatch_classified(std::span<Complex> amplitudes, const Matrix& m,
                         const Classification& c,
                         std::span<const int> qubits) {
  const std::size_t k = qubits.size();
  switch (c.cls) {
    case GateClass::kDiagonal:
      apply_diagonal(amplitudes, qubits, c.phases);
      return;
    case GateClass::kPermutation:
      apply_permutation(amplitudes, qubits, c.perm, c.factors);
      return;
    case GateClass::kControlled: {
      std::size_t fixed_mask = 0;
      std::array<int, kMaxKernelArity> inner_qubits{};
      std::size_t inner_count = 0;
      for (std::size_t j = 0; j < k; ++j) {
        if (c.control_positions & (std::uint32_t{1} << j)) {
          fixed_mask |= std::size_t{1} << qubits[j];
        } else {
          inner_qubits[inner_count++] = qubits[j];
        }
      }
      if (inner_count == 1) {
        apply_dense_1q(amplitudes, inner_qubits[0], c.inner, fixed_mask);
      } else {
        apply_dense_2q(amplitudes, inner_qubits[0], inner_qubits[1], c.inner,
                       fixed_mask);
      }
      return;
    }
    case GateClass::kDense:
      break;
  }
  switch (k) {
    case 1:
      apply_dense_1q(amplitudes, qubits[0], m, 0);
      return;
    case 2:
      apply_dense_2q(amplitudes, qubits[0], qubits[1], m, 0);
      return;
    default:
      apply_generic_k(amplitudes, qubits, m);
  }
}

// --- Telemetry ----------------------------------------------------------

/// Every apply is counted per dispatch class; applies are *timed* only
/// from this amplitude dimension up (n >= 12 qubits), where a clock
/// read pair is far below the kernel's own cost. The timing series
/// still registers either way, so scrapes see it (at zero) for small
/// circuits too.
constexpr std::size_t kTimedApplyDim = std::size_t{1} << 12;

/// One counter + latency histogram per dispatch class, registered once.
/// Index order matches GateClass; slot 4 is the generic fallback path
/// (forced or arity > kMaxKernelArity).
struct KernelMetrics {
  static constexpr int kGeneric = 4;
  obs::Counter applies[5];
  obs::Histogram seconds[5];

  KernelMetrics() {
    static constexpr const char* kClassNames[5] = {
        "diagonal", "permutation", "controlled", "dense", "generic"};
    auto& registry = obs::MetricsRegistry::global();
    for (int i = 0; i < 5; ++i) {
      const std::string label =
          std::string("{class=\"") + kClassNames[i] + "\"}";
      applies[i] = registry.counter(
          "bgls_kernel_apply_total" + label,
          "Statevector matrix applies by kernel dispatch class");
      seconds[i] = registry.histogram(
          "bgls_kernel_apply_seconds" + label,
          "Apply wall time by kernel dispatch class (dim >= 4096 only)");
    }
  }

  static KernelMetrics& instance() {
    static KernelMetrics metrics;
    return metrics;
  }
};

/// Counts (always) and times (large states only) one apply.
class [[maybe_unused]] TimedApply {
 public:
  TimedApply(int cls, std::size_t dim) noexcept {
#if BGLS_TELEMETRY
    cls_ = cls;
    KernelMetrics::instance().applies[cls_].add();
    if (dim >= kTimedApplyDim && obs::enabled()) {
      timed_ = true;
      start_ = std::chrono::steady_clock::now();
    }
#else
    (void)cls;
    (void)dim;
#endif
  }

  ~TimedApply() {
#if BGLS_TELEMETRY
    if (timed_) {
      KernelMetrics::instance().seconds[cls_].observe(
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start_)
              .count());
    }
#endif
  }

 private:
#if BGLS_TELEMETRY
  int cls_ = 0;
  bool timed_ = false;
  std::chrono::steady_clock::time_point start_;
#endif
};

int class_index(GateClass cls) {
  switch (cls) {
    case GateClass::kDiagonal:
      return 0;
    case GateClass::kPermutation:
      return 1;
    case GateClass::kControlled:
      return 2;
    case GateClass::kDense:
      return 3;
  }
  return 3;
}

}  // namespace

CompiledMatrix compile(Matrix m) {
  CompiledMatrix out;
  out.matrix = std::move(m);
  out.classification = classify(out.matrix);
  return out;
}

void apply_matrix(std::span<Complex> amplitudes, int num_qubits,
                  const Matrix& m, std::span<const int> qubits) {
  (void)num_qubits;
  if (force_generic() || qubits.size() > kMaxKernelArity) {
    const TimedApply timer(KernelMetrics::kGeneric, amplitudes.size());
    apply_generic(amplitudes, m, qubits);
    return;
  }
  const Classification c = classify(m);
  const TimedApply timer(class_index(c.cls), amplitudes.size());
  dispatch_classified(amplitudes, m, c, qubits);
}

void apply_matrix(std::span<Complex> amplitudes, int num_qubits,
                  const CompiledMatrix& compiled,
                  std::span<const int> qubits) {
  (void)num_qubits;
  if (force_generic() || qubits.size() > kMaxKernelArity) {
    const TimedApply timer(KernelMetrics::kGeneric, amplitudes.size());
    apply_generic(amplitudes, compiled.matrix, qubits);
    return;
  }
  const TimedApply timer(class_index(compiled.classification.cls),
                         amplitudes.size());
  dispatch_classified(amplitudes, compiled.matrix, compiled.classification,
                      qubits);
}

bool force_generic() {
  return g_force_generic.load(std::memory_order_relaxed);
}

void set_force_generic(bool force) {
  g_force_generic.store(force, std::memory_order_relaxed);
}

ForceGenericScope::ForceGenericScope(bool force) : previous_(force_generic()) {
  set_force_generic(force);
}

ForceGenericScope::~ForceGenericScope() { set_force_generic(previous_); }

}  // namespace bgls::kernels

/// \file kernels.h
/// Gate-class-specialized statevector apply kernels.
///
/// The paper's cost model (Secs. 2, 4.1.2) makes statevector BGLS
/// runtime proportional to f(n, d) — the cost of applying d gates to a
/// 2^n amplitude vector. Funneling every gate through a dense complex
/// matmul wastes most of that budget: X, Z, S, T, CZ, CNOT and friends
/// have far more structure than an arbitrary unitary. Following qsim
/// (Isakov et al. 2021), this module classifies a gate matrix by
/// *structure* and dispatches to a kernel shaped for that class:
///
///  - diagonal       → a phase-multiply pass, no gather (Z, S, T, Rz,
///                      CZ, CPhase, ZZ, CCZ); phases equal to 1 are
///                      skipped entirely, so CZ touches only 2^n / 4
///                      amplitudes;
///  - permutation    → an index-swap pass along the permutation's
///                      cycles (X, Y, CX, SWAP, ISWAP, CCX, CSWAP);
///                      fixed points cost nothing, so CX touches only
///                      half the index space;
///  - controlled     → identity blocks are skipped and the dense inner
///                      block runs on the controlled half/quarter of
///                      the index space (controlled-U gates, e.g. from
///                      QASM imports or Kraus dilations);
///  - dense          → restructured 1q/2q loops: matrix entries hoisted
///                      into registers, cache-blocked iteration over
///                      contiguous low-stride runs so the compiler can
///                      vectorize, with an all-real fast path (H, Ry,
///                      real fused products) and an optional AVX2+FMA
///                      path (BGLS_ENABLE_AVX2).
///
/// Classification is structural, not name-based: it works equally for
/// named gates, fused matrix gates, and (non-unitary) Kraus operators,
/// and costs O(4^k) on a 2^k x 2^k matrix — noise next to the 2^n
/// amplitude pass it saves.
///
/// Large passes parallelize over disjoint amplitude blocks with OpenMP
/// (BGLS_HAVE_OPENMP, enabled by the BGLS_ENABLE_OPENMP build flag).
/// Every kernel performs the same floating-point operations per
/// amplitude in every configuration, so results are bit-identical
/// across kernels on/off (for exact-zero-structured matrices), thread
/// counts, and loop shapes — the determinism the engine's tests pin.
///
/// The `force_generic` escape hatch (env BGLS_FORCE_GENERIC_KERNELS or
/// `kernels::set_force_generic`) routes everything through the
/// pre-specialization dense paths; tests and benches use it as the
/// reference implementation.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "linalg/matrix.h"

namespace bgls::kernels {

/// Structural classes, cheapest dispatch first. (`int` qubit ids match
/// the circuit layer's Qubit alias; this module only depends on linalg.)
enum class GateClass {
  kDiagonal,     ///< nonzeros only on the diagonal
  kPermutation,  ///< exactly one nonzero per row and per column
  kControlled,   ///< identity unless all control bits read 1; dense inner
  kDense,        ///< no exploitable structure
};

/// Result of structurally classifying a 2^k x 2^k matrix.
struct Classification {
  GateClass cls = GateClass::kDense;
  /// kDiagonal: the 2^k diagonal entries (gate-local order).
  std::vector<Complex> phases;
  /// kPermutation: new_amp[r] = factors[r] * old_amp[perm[r]].
  std::vector<std::uint8_t> perm;
  std::vector<Complex> factors;
  /// kControlled: bit j set ⇔ gate-list position j (qubits[j]) is a
  /// control, plus the dense block applied when all controls read 1.
  std::uint32_t control_positions = 0;
  Matrix inner;
};

/// Classifies a gate matrix by structure. Zero/identity checks are
/// exact (no tolerance): gate constructors produce exact zeros, and
/// exactness keeps the specialized kernels bit-compatible with the
/// dense reference on the library's named gates.
[[nodiscard]] Classification classify(const Matrix& m);

/// A gate matrix bundled with its precomputed classification — the
/// memoizable unit. Gate caches one per gate (Gate::compiled_unitary),
/// so classification runs once per distinct gate instead of once per
/// apply_matrix call.
struct CompiledMatrix {
  Matrix matrix;
  Classification classification;
};

/// Classifies `m` and bundles it. Pure; the apply_matrix overload below
/// consumes the result without re-classifying.
[[nodiscard]] CompiledMatrix compile(Matrix m);

/// Applies the 2^k x 2^k matrix `m` to the listed qubits of a 2^n
/// amplitude vector, dispatching through classify(). The gate-local
/// index uses qubits[0] as the most significant bit (gate.h
/// convention). Matrices need not be unitary (Kraus branches).
void apply_matrix(std::span<Complex> amplitudes, int num_qubits,
                  const Matrix& m, std::span<const int> qubits);

/// Same, but reuses the precomputed classification (identical dispatch
/// and arithmetic, so results are bit-identical to the classifying
/// overload; force_generic() is still honored).
void apply_matrix(std::span<Complex> amplitudes, int num_qubits,
                  const CompiledMatrix& compiled,
                  std::span<const int> qubits);

/// True when specialized kernels are disabled and every apply takes the
/// generic dense path. Initialized from the BGLS_FORCE_GENERIC_KERNELS
/// environment variable ("", "0" = off); settable at runtime.
[[nodiscard]] bool force_generic();
void set_force_generic(bool force);

/// RAII toggle for tests/benches comparing the two paths.
class ForceGenericScope {
 public:
  explicit ForceGenericScope(bool force);
  ~ForceGenericScope();
  ForceGenericScope(const ForceGenericScope&) = delete;
  ForceGenericScope& operator=(const ForceGenericScope&) = delete;

 private:
  bool previous_;
};

}  // namespace bgls::kernels

/// \file state.h
/// Dense statevector simulation state — the C++ counterpart of
/// cirq.StateVectorSimulationState used in the paper's quickstart.
///
/// Stores all 2^n amplitudes with the library's bit convention (qubit q
/// at bit q of the index, so Bitstring b indexes amplitude b directly,
/// which makes compute_probability an O(1) lookup — the f(n, d) cost for
/// this backend is dominated by gate application).
///
/// The state exposes the full sampler-state interface: unitary gate
/// application, unnormalized Kraus application (quantum trajectories),
/// computational-basis projection (mid-circuit measurement collapse), and
/// bitstring probabilities. Gate application dispatches through the
/// gate-class-specialized kernels in kernels.h; large passes parallelize
/// over amplitude blocks with OpenMP when compiled with
/// BGLS_HAVE_OPENMP (the BGLS_ENABLE_OPENMP build flag).
///
/// All const accessors (amplitude, probability, amplitudes, ...) are
/// pure reads and safe to call concurrently from many threads while no
/// mutator runs — the batch engine's snapshot-sharing path relies on
/// this, probing one shared evolved state from every repetition shard
/// at once.

#pragma once

#include <span>
#include <vector>

#include "circuit/circuit.h"
#include "util/bits.h"
#include "util/rng.h"

namespace bgls {

/// Dense 2^n-amplitude pure state.
class StateVectorState {
 public:
  /// Initializes |initial⟩ on num_qubits qubits (default |0...0⟩).
  explicit StateVectorState(int num_qubits, Bitstring initial = 0);

  [[nodiscard]] int num_qubits() const { return num_qubits_; }

  /// Dimension 2^n.
  [[nodiscard]] std::size_t dimension() const { return amplitudes_.size(); }

  /// Read-only amplitude view (index = packed Bitstring).
  [[nodiscard]] std::span<const Complex> amplitudes() const {
    return amplitudes_;
  }

  /// ⟨b|ψ⟩.
  [[nodiscard]] Complex amplitude(Bitstring b) const {
    return amplitudes_[b];
  }

  /// |⟨b|ψ⟩|² — the compute_probability ingredient of the BGLS triple.
  [[nodiscard]] double probability(Bitstring b) const;

  /// Applies a unitary operation (resolves nothing: parameters must be
  /// concrete). Throws for measurements and channels — the sampler and
  /// trajectory machinery own those.
  void apply(const Operation& op);

  /// Applies an arbitrary (2^k x 2^k) matrix to the listed qubits without
  /// renormalizing — used for Kraus branches. The gate-local index uses
  /// qubits[0] as the most significant bit (gate.h convention).
  void apply_matrix(const Matrix& m, std::span<const Qubit> qubits);

  /// Projects the listed qubits onto the corresponding bits of `bits`
  /// and renormalizes. Throws when the outcome has zero probability.
  void project(std::span<const Qubit> qubits, Bitstring bits);

  /// Current squared norm (1 for normalized states).
  [[nodiscard]] double norm_squared() const;

  /// Rescales to unit norm; throws on the zero vector.
  void renormalize();

  /// Full probability vector |ψ_b|² (2^n entries).
  [[nodiscard]] std::vector<double> probabilities() const;

  /// Marginal probability that qubit q reads 1.
  [[nodiscard]] double marginal_one(Qubit q) const;

  /// Samples a full bitstring from |ψ|². Equivalent to sample_n(1,
  /// rng)[0]; prefer sample_n when drawing many samples from one state.
  [[nodiscard]] Bitstring sample(Rng& rng) const;

  /// Draws `count` bitstrings from |ψ|² with one O(2^n) probabilities
  /// pass and O(n) inverse-CDF binary searches per draw — the batched
  /// form the conventional direct-sampling baseline uses (the per-draw
  /// linear scan it replaces made the baseline benches scan-bound).
  [[nodiscard]] std::vector<Bitstring> sample_n(std::uint64_t count,
                                                Rng& rng) const;

  /// Max |amplitude difference| against another state.
  [[nodiscard]] double max_abs_diff(const StateVectorState& other) const;

 private:
  /// Shared precondition checks of apply()/apply_matrix().
  void check_targets(const Matrix& m, std::span<const Qubit> qubits) const;

  int num_qubits_ = 0;
  std::vector<Complex> amplitudes_;
};

/// The BGLS `apply_op` customization point for statevectors: applies
/// unitaries; throws on measurements/channels (handled by the sampler).
void apply_op(const Operation& op, StateVectorState& state, Rng& rng);

/// The BGLS `compute_probability` customization point for statevectors.
[[nodiscard]] double compute_probability(const StateVectorState& state,
                                         Bitstring b);

/// Evolves the state through every non-measurement operation of the
/// circuit; channels are sampled as quantum trajectories with `rng`.
void evolve(const Circuit& circuit, StateVectorState& state, Rng& rng);

}  // namespace bgls

/// \file bgls.h
/// Aggregate public header: include this to get the whole library (the
/// equivalent of `import bgls` in the Python package).
///
/// Namespaced API tour:
///  - bgls::Session / bgls::RunRequest / bgls::RunResult — the runtime
///    front door: pick a backend per request (or Backend kAuto for the
///    circuit analyzer), run/run_async/run_batch over type-erased
///    circuits (api/session.h); bgls::Backend / bgls::BackendRegistry /
///    bgls::BackendSelector for custom backends and routing
///    (api/backend.h, api/registry.h, api/selector.h);
///  - bgls::Circuit / bgls::Gate / free operation builders (h, cnot,
///    measure, ...) — circuit construction (circuit/*.h);
///  - bgls::Simulator<State> — the gate-by-gate sampler (core/simulator.h);
///  - bgls::BatchEngine<State> / bgls::EngineContext / bgls::ThreadPool
///    — the parallel batch-sampling engine: shards trajectories and
///    dictionary-batched repetition counts across deterministic RNG
///    streams on a long-lived shared pool, two-level run_batch() for
///    many-circuit sweeps, and submit()/run_async() futures for
///    overlapping circuit construction with sampling (engine/engine.h;
///    also reachable via SimulatorOptions::num_threads and
///    Simulator::run_async);
///  - state backends: bgls::StateVectorState, bgls::DensityMatrixState,
///    bgls::CHState (+ act_on_near_clifford), bgls::MPSState;
///  - bgls::optimize_for_bgls — circuit fusion for the sampler;
///  - bgls::parse_qasm / bgls::to_qasm — OpenQASM 2.0 interop;
///  - bgls::Graph / bgls::solve_maxcut_qaoa — the QAOA application;
///  - bgls::obs::MetricsRegistry / bgls::obs::Trace — the telemetry
///    subsystem: process-wide counters/gauges/latency histograms over
///    every layer (kernels, engine, scheduler, daemon), per-job trace
///    spans with deterministic IDs, and Prometheus text exposition
///    (obs/metrics.h, obs/trace.h, obs/exposition.h; compile out with
///    -DBGLS_ENABLE_TELEMETRY=OFF);
///  - bgls::Rng — seeded randomness for reproducible sampling, with
///    jump()/split(i) deterministic stream derivation for parallel runs.

#pragma once

#include "api/adapters.h"
#include "api/backend.h"
#include "api/registry.h"
#include "api/run_types.h"
#include "api/selector.h"
#include "api/session.h"
#include "channels/channels.h"
#include "circuit/circuit.h"
#include "circuit/decompose.h"
#include "circuit/diagram.h"
#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/baseline.h"
#include "core/observables.h"
#include "core/optimize.h"
#include "core/result.h"
#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "engine/context.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "mps/state.h"
#include "obs/exposition.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "qaoa/qaoa.h"
#include "qasm/qasm.h"
#include "stabilizer/ch_form.h"
#include "stabilizer/near_clifford.h"
#include "stabilizer/tableau.h"
#include "statevector/state.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timing.h"

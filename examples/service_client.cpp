/// \file service_client.cpp
/// Walkthrough of the bgls sampling service: starts an in-process
/// `bgls_serve` daemon on a private Unix socket, connects a
/// ServiceClient over the real wire protocol, and exercises the whole
/// job lifecycle — submit, stream partial histograms, read the
/// byte-canonical report, cancel a long job, hit admission control, and
/// read the stats endpoint. The same calls work against a standalone
/// `bgls_serve` process; only the endpoint changes.
///
///   $ ./service_client

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>
#include <unistd.h>

#include "service/client.h"
#include "service/daemon.h"

namespace {

const char kGhzQasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[3];\n"
    "creg c[3];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "measure q -> c;\n";

}  // namespace

int main() {
  using namespace bgls;
  using namespace bgls::service;

  // A private socket path per process so parallel runs never collide.
  const std::string socket_path =
      "/tmp/bgls_example_" + std::to_string(::getpid()) + ".sock";

  DaemonOptions options;
  options.endpoint = Endpoint::unix_socket(socket_path);
  options.scheduler.max_concurrent_jobs = 1;
  options.scheduler.max_queue_depth = 2;  // small, to show admission control

  ServiceDaemon daemon(options);
  daemon.start();
  std::cout << "daemon listening on " << daemon.endpoint().to_string()
            << "\n\n";

  ServiceClient client(daemon.endpoint());

  // 1. Submit + wait: the report is byte-identical to
  //    `bgls_run --reps 2048 --seed 7` on the same circuit.
  SubmitArgs args;
  args.qasm = kGhzQasm;
  args.repetitions = 2048;
  args.seed = 7;
  const std::uint64_t job = client.submit(args);
  std::cout << "submitted job " << job << "; canonical report:\n"
            << client.wait_report(job) << "\n";

  // 2. Streaming: per-trajectory sampling (no_batch) emits cumulative
  //    histograms every progress_every repetitions, deterministic in
  //    content for the fixed seed.
  args.repetitions = 50000;
  args.no_batch = true;
  args.progress_every = 10000;
  const std::uint64_t streamed = client.submit(args);
  std::cout << "streaming job " << streamed << ":\n";
  const std::string report =
      client.stream(streamed, [](const JsonValue& frame) {
        std::cout << "  progress " << frame.u64_or("completed", 0) << "/"
                  << frame.u64_or("total", 0) << " repetitions\n";
      });
  std::cout << "  final report delivered (" << report.size() << " bytes)\n\n";

  // 3. Cancellation: a huge per-trajectory job stops within a bounded
  //    number of steps of the cancel request.
  args.repetitions = 500000000;
  args.progress_every = 0;
  const std::uint64_t doomed = client.submit(args);
  client.cancel(doomed);
  try {
    client.wait_report(doomed);
    std::cerr << "cancelled job unexpectedly produced a report\n";
    return 1;
  } catch (const ServiceError& e) {
    std::cout << "job " << doomed << " ended with code '" << e.code()
              << "' (" << e.what() << ")\n\n";
  }

  // 4. Admission control: with one runner and a 2-deep queue, a burst
  //    of long submissions is shed with queue_full once the queue
  //    fills (how many squeeze in first depends on runner timing).
  args.repetitions = 100000000;
  std::vector<std::uint64_t> burst;
  bool shed = false;
  for (int i = 0; i < 6 && !shed; ++i) {
    try {
      burst.push_back(client.submit(args));
    } catch (const ServiceError& e) {
      std::cout << "burst shed at the door after " << burst.size()
                << " accepted jobs: [" << e.code() << "] " << e.what()
                << "\n\n";
      shed = true;
    }
  }
  if (!shed) {
    std::cerr << "burst was never rejected\n";
    return 1;
  }
  for (const std::uint64_t id : burst) client.cancel(id);

  // 5. Stats: aggregate counters incl. per-backend routing decisions.
  const JsonValue stats = client.stats();
  std::cout << "stats: submitted=" << stats.u64_or("submitted", 0)
            << " completed=" << stats.u64_or("completed", 0)
            << " cancelled=" << stats.u64_or("cancelled", 0)
            << " rejected=" << stats.u64_or("rejected", 0) << "\n";

  daemon.stop();
  std::cout << "daemon stopped\n";
  return 0;
}

/// \file mps_sampling.cpp
/// Sampling with matrix product states (Sec. 4.3): shows the
/// bitstring-amplitude slicing that bgls adds on top of the tensor
/// network state, the bond structure a GHZ circuit creates, and the
/// statevector-vs-MPS runtime gap on wide shallow circuits (Fig. 7a's
/// regime at example scale).
///
/// POWER-USER PATH: this example deliberately stays on the raw
/// templated core — MPSState/StateVectorState driven through
/// Simulator<State> directly, the zero-overhead compile-time API the
/// runtime Session (api/session.h) dispatches into. Use this form when
/// the representation is fixed at compile time and you want nothing
/// between you and the sampler; use Session/RunRequest (see
/// examples/quickstart.cpp) when the choice happens per request.
///
///   $ ./mps_sampling

#include <iostream>

#include "circuit/diagram.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "mps/state.h"
#include "statevector/state.h"
#include "util/table.h"
#include "util/timing.h"

int main() {
  using namespace bgls;

  // --- Part 1: GHZ with randomly sequenced CNOTs (Fig. 6a) -------------
  Rng ghz_rng(5);
  const int ghz_width = 6;
  const Circuit ghz = random_ghz_circuit(ghz_width, ghz_rng);
  std::cout << "Random-GHZ circuit (Fig. 6a):\n" << to_text_diagram(ghz)
            << "\n";

  MPSState mps(ghz_width);
  for (const auto& op : ghz.all_operations()) mps.apply(op);
  std::cout << "MPS after the GHZ circuit: max bond dimension "
            << mps.max_bond_dimension() << ", total tensor elements "
            << mps.tensor_size_total() << "\n";
  std::cout << "P(" << std::string(ghz_width, '0')
            << ") = " << mps.probability(0) << ",  P("
            << std::string(ghz_width, '1') << ") = "
            << mps.probability((Bitstring{1} << ghz_width) - 1) << "\n\n";

  // --- Part 2: wide shallow circuit, MPS vs statevector ----------------
  const int width = 18;
  Rng circuit_rng(11);
  const Circuit shallow = random_fixed_cnot_circuit(width, 6, 8, circuit_rng);
  const std::uint64_t reps = 200;

  Simulator<MPSState> mps_sim{MPSState(width)};
  Simulator<StateVectorState> sv_sim{StateVectorState(width)};

  Rng rng1(21), rng2(23);
  const double mps_time =
      median_runtime([&] { mps_sim.sample(shallow, reps, rng1); });
  const double sv_time =
      median_runtime([&] { sv_sim.sample(shallow, reps, rng2); });

  ConsoleTable table({"backend", "runtime", "notes"});
  table.add_row({"MPS", ConsoleTable::duration(mps_time),
                 "tensors stay small at low entanglement"});
  table.add_row({"statevector", ConsoleTable::duration(sv_time),
                 "2^18 amplitudes regardless"});
  std::cout << "Sampling " << reps << " bitstrings from a " << width
            << "-qubit shallow circuit (8 CNOTs):\n\n";
  table.print(std::cout);
  std::cout << "\nspeedup: " << ConsoleTable::num(sv_time / mps_time, 3)
            << "x (Fig. 7a's regime: wide + low entanglement favors MPS)\n";
  return 0;
}

/// \file quickstart.cpp
/// The paper's Sec. 3.1 quickstart, in C++: build a 2-qubit GHZ circuit
/// with a terminal measurement, construct a bgls::Simulator from the
/// three ingredients (initial state, apply_op, compute_probability),
/// run it, and plot the histogram (Fig. 1).
///
///   $ ./quickstart

#include <iostream>

#include "circuit/diagram.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  const int nqubits = 2;
  Circuit circuit{
      h(0),
      cnot(0, 1),
      measure({0, 1}, "z"),
  };

  std::cout << "Circuit:\n" << to_text_diagram(circuit) << "\n";

  // The paper's three-ingredient constructor. For library state types
  // the two hooks can also be defaulted: Simulator<StateVectorState>
  // sim{StateVectorState(nqubits)};
  Simulator<StateVectorState> simulator{
      StateVectorState(nqubits),
      [](const Operation& op, StateVectorState& state, Rng& rng) {
        apply_op(op, state, rng);
      },
      [](const StateVectorState& state, Bitstring b) {
        return compute_probability(state, b);
      }};

  Rng rng(/*seed=*/2023);
  const Result results = simulator.run(circuit, /*repetitions=*/10, rng);

  std::cout << "Measurement results for key 'z' (10 repetitions):\n";
  print_histogram(std::cout, results.histogram("z"), nqubits);

  // More repetitions make the 50/50 GHZ structure obvious; the
  // dictionary-batched sampler makes this almost free (Sec. 3.2.3).
  const Result many = simulator.run(circuit, 100000, rng);
  std::cout << "\nWith 100000 repetitions:\n";
  print_histogram(std::cout, many.histogram("z"), nqubits);
  std::cout << "\npeak unique-bitstring dictionary size: "
            << simulator.last_run_stats().max_dictionary_size << "\n";
  return 0;
}

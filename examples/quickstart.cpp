/// \file quickstart.cpp
/// The paper's Sec. 3.1 quickstart on the runtime API: build a 2-qubit
/// GHZ circuit with a terminal measurement, hand it to a bgls::Session
/// as a RunRequest, and plot the histogram (Fig. 1). The Session picks
/// the cheapest backend automatically (a pure-Clifford GHZ routes to
/// the stabilizer representation) and one explicit-backend run shows
/// the override knob.
///
/// The templated core (Simulator<State> assembled from the paper's
/// three ingredients) remains available as the zero-overhead power-user
/// path — see examples/mps_sampling.cpp for it in raw form.
///
///   $ ./quickstart

#include <iostream>

#include "api/session.h"
#include "circuit/diagram.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  const int nqubits = 2;
  Circuit circuit{
      h(0),
      cnot(0, 1),
      measure({0, 1}, "z"),
  };

  std::cout << "Circuit:\n" << to_text_diagram(circuit) << "\n";

  // One Session serves every request; Backend kAuto (the default) asks
  // the circuit analyzer to route each circuit to the cheapest
  // representation.
  Session session;
  const RunResult results = session.run(RunRequest()
                                            .with_circuit(circuit)
                                            .with_repetitions(10)
                                            .with_seed(2023));
  std::cout << "Backend: " << results.backend_name << " ("
            << results.selection_reason << ")\n";
  std::cout << "Measurement results for key 'z' (10 repetitions):\n";
  print_histogram(std::cout, results.measurements.histogram("z"), nqubits);

  // More repetitions make the 50/50 GHZ structure obvious; the
  // dictionary-batched sampler makes this almost free (Sec. 3.2.3).
  const RunResult many = session.run(RunRequest()
                                         .with_circuit(circuit)
                                         .with_repetitions(100000)
                                         .with_seed(2024));
  std::cout << "\nWith 100000 repetitions:\n";
  print_histogram(std::cout, many.measurements.histogram("z"), nqubits);
  std::cout << "\npeak unique-bitstring dictionary size: "
            << many.stats.max_dictionary_size << "\n";

  // The same request forced onto the dense statevector backend — the
  // override knob a heterogeneous service exposes per request.
  const RunResult forced = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(100000)
                                           .with_seed(2024)
                                           .with_backend(BackendId::kStateVector));
  std::cout << "\nForced onto '" << forced.backend_name
            << "': same 50/50 structure:\n";
  print_histogram(std::cout, forced.measurements.histogram("z"), nqubits);
  return 0;
}

/// \file teleportation.cpp
/// Quantum teleportation with mid-circuit measurement and classical
/// feed-forward — the full non-unitary feature set of Sec. 3.2.1 in one
/// protocol: Alice's Bell measurement collapses the state mid-circuit,
/// and Bob's X/Z corrections are classically controlled on her
/// outcomes.
///
///   $ ./teleportation

#include <iostream>

#include "circuit/diagram.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  // The message qubit q0 carries |ψ⟩ = Ry(θ)|0⟩ with P(1) = sin²(θ/2).
  const double theta = 1.1;
  const double expected_p1 = std::sin(theta / 2.0) * std::sin(theta / 2.0);

  Circuit circuit;
  circuit.append(ry(theta, 0));            // prepare the message
  circuit.append(h(1));                    // Bell pair on (q1, q2)
  circuit.append(cnot(1, 2));
  circuit.append(cnot(0, 1));              // Alice's Bell measurement
  circuit.append(h(0));
  circuit.append(measure({1}, "m_x"));
  circuit.append(measure({0}, "m_z"));
  // Bob's corrections, classically controlled on Alice's outcomes.
  circuit.append(x(2).controlled_by_measurement("m_x"));
  circuit.append(z(2).controlled_by_measurement("m_z"));
  circuit.append(measure({2}, "bob"));

  std::cout << "Teleportation circuit:\n" << to_text_diagram(circuit) << "\n";

  Simulator<StateVectorState> sim{StateVectorState(3)};
  Rng rng(7);
  const std::uint64_t reps = 100000;
  const Result result = sim.run(circuit, reps, rng);

  std::uint64_t ones = 0;
  for (const Bitstring v : result.values("bob")) ones += v;
  const double measured_p1 = static_cast<double>(ones) / reps;

  ConsoleTable table({"quantity", "value"});
  table.add_row({"P(1) prepared on q0", ConsoleTable::num(expected_p1, 4)});
  table.add_row({"P(1) measured on q2", ConsoleTable::num(measured_p1, 4)});
  table.print(std::cout);
  std::cout << "\nBob's qubit reproduces Alice's state statistics: the "
               "mid-circuit\nmeasurements and feed-forward corrections "
               "teleported |ψ⟩.\n";
  return 0;
}

/// \file randomized_benchmarking.cpp
/// Randomized-benchmarking-style workload driver (ROADMAP "More
/// workloads"): random Clifford sequences of growing depth, each
/// followed by its exact inverse so the noiseless circuit is the
/// identity; a depolarizing channel after every layer makes the
/// survival probability P(0...0) decay with depth — the RB signature.
///
/// Two execution paths, both over the runtime API:
///  1. Session::run_batch — the whole depth sweep as one mixed-depth
///     batch through the engine (kAuto routes every circuit; the noise
///     channels force per-trajectory sampling, the engine shards the
///     trajectories across streams);
///  2. the service JobScheduler — the same circuits as queued jobs with
///     depth-dependent priorities and per-job streaming, i.e. the
///     heterogeneous-traffic shape bgls_serve multiplexes.
///
///   $ ./randomized_benchmarking

#include <cstdint>
#include <iostream>
#include <vector>

#include "api/session.h"
#include "channels/channels.h"
#include "service/scheduler.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace bgls;

constexpr int kQubits = 2;
constexpr double kNoise = 0.02;  // depolarizing probability per qubit/layer

/// One random Clifford layer on 2 qubits and its exact inverse. The
/// generators are self-inverse except S (inverse Sdg), so the inverse
/// layer is the reversed gates with S ↔ S†.
struct Layer {
  std::vector<Operation> forward;
  std::vector<Operation> inverse;
};

Layer random_layer(Rng& rng) {
  Layer layer;
  switch (rng.uniform_int(6)) {
    case 0: layer.forward = {h(0), h(1)}; break;
    case 1: layer.forward = {s(0), z(1)}; break;
    case 2: layer.forward = {x(0), s(1)}; break;
    case 3: layer.forward = {cnot(0, 1)}; break;
    case 4: layer.forward = {cz(0, 1)}; break;
    default: layer.forward = {y(0), h(1)}; break;
  }
  for (auto it = layer.forward.rbegin(); it != layer.forward.rend(); ++it) {
    if (it->gate().kind() == GateKind::kS) {
      layer.inverse.push_back(sdg(it->qubits().front()));
    } else {
      layer.inverse.push_back(*it);
    }
  }
  return layer;
}

/// A depth-m RB circuit: m random layers (+ per-layer depolarizing
/// noise), the exact inverse sequence, a terminal measurement.
Circuit rb_circuit(int depth, Rng& rng) {
  Circuit circuit;
  std::vector<std::vector<Operation>> inverses;
  for (int m = 0; m < depth; ++m) {
    Layer layer = random_layer(rng);
    circuit.append(layer.forward);
    for (Qubit q = 0; q < kQubits; ++q) {
      circuit.append(Operation(Gate::Channel(depolarize(kNoise)), {q}));
    }
    inverses.push_back(std::move(layer.inverse));
  }
  for (auto it = inverses.rbegin(); it != inverses.rend(); ++it) {
    circuit.append(*it);
  }
  circuit.append(measure({0, 1}, "rb"));
  return circuit;
}

double survival(const Result& result) {
  const auto distribution = result.distribution("rb");
  const auto it = distribution.find(0);
  return it == distribution.end() ? 0.0 : it->second;
}

}  // namespace

int main() {
  using namespace bgls;

  const std::vector<int> depths = {1, 2, 4, 8, 16, 32};
  const std::uint64_t reps = 20000;

  Rng circuit_rng(2023);
  std::vector<Circuit> circuits;
  circuits.reserve(depths.size());
  for (const int depth : depths) {
    circuits.push_back(rb_circuit(depth, circuit_rng));
  }

  // --- Path 1: the whole sweep as one engine batch --------------------
  Session session;
  const std::vector<RunResult> batch = session.run_batch(
      circuits,
      RunRequest().with_repetitions(reps).with_seed(7).with_threads(0));

  ConsoleTable table({"depth", "survival P(00)", "backend"});
  for (std::size_t i = 0; i < depths.size(); ++i) {
    table.add_row({std::to_string(depths[i]),
                   ConsoleTable::num(survival(batch[i].measurements), 4),
                   batch[i].backend_name});
  }
  std::cout << "Randomized benchmarking via Session::run_batch ("
            << reps << " trajectories per depth, depolarizing p=" << kNoise
            << " per qubit/layer):\n\n";
  table.print(std::cout);
  std::cout << "\nSurvival decays with depth — the RB signature. The exact\n"
               "inverse sequence means every deviation from P(00)=1 is\n"
               "injected noise, not coherent error.\n\n";

  // --- Path 2: the same sweep as scheduled service jobs ----------------
  // Deep circuits get *lower* priority, so the scheduler drains the
  // cheap shallow jobs first — heterogeneous-traffic shaping a service
  // does; progress streams per job.
  service::SchedulerOptions scheduler_options;
  scheduler_options.max_concurrent_jobs = 2;
  service::JobScheduler scheduler(scheduler_options);

  std::vector<std::uint64_t> jobs;
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    jobs.push_back(scheduler.submit(RunRequest()
                                        .with_circuit(circuits[i])
                                        .with_repetitions(reps)
                                        .with_seed(7)
                                        .with_priority(-depths[i])
                                        .with_progress(reps / 4, nullptr)));
  }
  std::cout << "Same sweep through the service JobScheduler (2 concurrent\n"
               "jobs, shallow depths prioritized):\n\n";
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const service::JobInfo info = scheduler.wait(jobs[i]);
    if (info.state != service::JobState::kDone) {
      std::cerr << "job " << jobs[i] << " ended "
                << service::job_state_name(info.state) << ": " << info.error
                << "\n";
      return 1;
    }
    std::cout << "  depth " << depths[i] << ": started #" << info.start_order
              << ", " << info.progress_updates << " progress updates, P(00)="
              << ConsoleTable::num(survival(info.result->measurements), 4)
              << "\n";
  }
  const service::SchedulerStats stats = scheduler.stats();
  std::cout << "\nscheduler: " << stats.completed << " jobs completed, "
            << stats.failed + stats.cancelled + stats.timed_out
            << " aborted\n";
  return 0;
}

/// \file noisy_simulation.cpp
/// Non-unitary operations in BGLS (Sec. 3.2.1): noise channels via
/// quantum trajectories and mid-circuit measurement. The sampled
/// distribution from statevector trajectories is cross-checked against
/// the exact density-matrix evolution.
///
///   $ ./noisy_simulation

#include <iostream>

#include "core/simulator.h"
#include "densitymatrix/state.h"
#include "statevector/state.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  // A Bell pair degraded by amplitude damping (non-unital!) and
  // depolarizing noise.
  Circuit circuit{h(0), cnot(0, 1)};
  circuit.append(Operation(Gate::Channel(amplitude_damp(0.3)), {0}));
  circuit.append(Operation(Gate::Channel(depolarize(0.2)), {1}));
  circuit.append(measure({0, 1}, "noisy"));

  // Exact reference: deterministic Kraus-sum evolution of the density
  // matrix.
  DensityMatrixState rho(2);
  evolve_exact(circuit, rho);

  // BGLS with statevector trajectories: each repetition samples a Kraus
  // branch jointly with the bitstring candidates, so even the non-unital
  // damping channel is sampled without bias.
  Simulator<StateVectorState> sim{StateVectorState(2)};
  Rng rng(99);
  const std::uint64_t reps = 200000;
  const Result result = sim.run(circuit, reps, rng);
  const auto empirical = result.distribution("noisy");

  ConsoleTable table({"outcome", "trajectory estimate", "exact (dm)"});
  for (Bitstring b = 0; b < 4; ++b) {
    const auto it = empirical.find(b);
    table.add_row({to_string(b, 2),
                   ConsoleTable::num(it == empirical.end() ? 0.0 : it->second, 4),
                   ConsoleTable::num(rho.probability(b), 4)});
  }
  std::cout << "Noisy Bell pair, " << reps << " trajectories vs exact:\n\n";
  table.print(std::cout);
  std::cout << "\ntrajectories used: " << sim.last_run_stats().trajectories
            << " (sample parallelization is disabled for stochastic "
               "circuits)\n\n";

  // Mid-circuit measurement: measure, flip conditionally-in-spirit, and
  // measure again — records stay perfectly consistent per repetition.
  Circuit mid{h(0), measure({0}, "first"), x(0), measure({0}, "second")};
  const Result mid_result = sim.run(mid, 6, rng);
  std::cout << "Mid-circuit measurement demo (each row one repetition):\n";
  for (std::size_t i = 0; i < 6; ++i) {
    std::cout << "  first=" << mid_result.values("first")[i]
              << "  second=" << mid_result.values("second")[i] << "\n";
  }
  std::cout << "'second' is always the complement of 'first'.\n";
  return 0;
}

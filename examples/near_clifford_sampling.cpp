/// \file near_clifford_sampling.cpp
/// Sampling Clifford+T circuits with stabilizer states and the
/// sum-over-Cliffords channel (Sec. 4.2): every T gate is replaced
/// stochastically by I or S, so each repetition explores one of the
/// 2^#T Clifford branches. The attained overlap with the exact
/// distribution degrades as T gates are added — run this to watch it.
///
///   $ ./near_clifford_sampling

#include <iostream>

#include "circuit/random.h"
#include "core/simulator.h"
#include "stabilizer/near_clifford.h"
#include "statevector/state.h"
#include "util/table.h"

namespace {

/// Exact output distribution via the statevector backend.
bgls::Distribution exact_distribution(const bgls::Circuit& circuit, int n) {
  bgls::StateVectorState state(n);
  bgls::Rng rng(0);
  bgls::evolve(circuit, state, rng);
  bgls::Distribution dist;
  for (bgls::Bitstring b = 0; b < (bgls::Bitstring{1} << n); ++b) {
    const double p = state.probability(b);
    if (p > 1e-15) dist[b] = p;
  }
  return dist;
}

}  // namespace

int main() {
  using namespace bgls;

  const int n = 5;
  const int moments = 30;
  const std::uint64_t samples = 20000;
  Rng circuit_rng(7);
  const Circuit clifford = random_clifford_circuit(n, moments, circuit_rng);

  ConsoleTable table({"#T gates", "overlap with exact", "branches (2^#T)"});
  for (const int t_count : {0, 1, 2, 4, 8}) {
    Rng sub_rng(100 + static_cast<std::uint64_t>(t_count));
    const Circuit circuit =
        t_count == 0 ? clifford
                     : with_random_t_substitutions(clifford, t_count, sub_rng);

    // Near-Clifford sampling must re-run per repetition so each sample
    // explores a fresh stochastic Clifford branch.
    Simulator<CHState> sim{
        CHState(n),
        [](const Operation& op, CHState& state, Rng& rng) {
          act_on_near_clifford(op, state, rng);
        },
        [](const CHState& state, Bitstring b) { return state.probability(b); },
        SimulatorOptions{.skip_diagonal_updates = false,
                         .disable_sample_parallelization = true}};
    Rng rng(42);
    const Counts counts = sim.sample(circuit, samples, rng);
    const double overlap =
        distribution_overlap(normalize(counts), exact_distribution(circuit, n));
    table.add_row({std::to_string(t_count), ConsoleTable::num(overlap, 4),
                   std::to_string(1u << t_count)});
  }
  std::cout << "Sum-over-Cliffords sampling of a " << n << "-qubit, "
            << moments << "-moment Clifford circuit with T substitutions\n"
            << "(" << samples << " samples per row; Sec. 4.2 / Fig. 5):\n\n";
  table.print(std::cout);
  std::cout << "\nPure Clifford (0 T gates) is exact; overlap decreases as\n"
               "the circuit becomes increasingly non-Clifford.\n";
  return 0;
}

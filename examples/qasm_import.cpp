/// \file qasm_import.cpp
/// Interop with non-Cirq circuits (Sec. 3.2.4): parse an OpenQASM 2.0
/// program, show the imported circuit, sample it with BGLS, and export
/// it back to QASM.
///
///   $ ./qasm_import

#include <iostream>

#include "circuit/diagram.h"
#include "core/simulator.h"
#include "qasm/qasm.h"
#include "statevector/state.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  const std::string source = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[1];
cx q[1],q[2];
h q;
measure q -> c;
)";

  std::cout << "Input QASM:\n" << source << "\n";
  const Circuit circuit = parse_qasm(source);
  std::cout << "Imported circuit:\n" << to_text_diagram(circuit) << "\n";

  Simulator<StateVectorState> sim{StateVectorState(circuit.num_qubits())};
  Rng rng(4);
  const Result result = sim.run(circuit, 20000, rng);
  std::cout << "Sampled histogram for key 'c':\n";
  print_histogram(std::cout, result.histogram("c"), circuit.num_qubits());

  std::cout << "\nRe-exported QASM:\n" << to_qasm(circuit);
  return 0;
}

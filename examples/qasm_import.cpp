/// \file qasm_import.cpp
/// Interop with non-Cirq circuits (Sec. 3.2.4): parse an OpenQASM 2.0
/// program, show the imported circuit, sample it through the runtime
/// API (bgls::Session — the same path the bgls_run CLI drives), and
/// export it back to QASM.
///
///   $ ./qasm_import

#include <iostream>

#include "api/session.h"
#include "circuit/diagram.h"
#include "qasm/qasm.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  const std::string source = R"(OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/4) q[1];
cx q[1],q[2];
h q;
measure q -> c;
)";

  std::cout << "Input QASM:\n" << source << "\n";
  const Circuit circuit = parse_qasm(source);
  std::cout << "Imported circuit:\n" << to_text_diagram(circuit) << "\n";

  // The Rz(pi/4) makes the circuit non-Clifford, so automatic selection
  // routes it to the dense statevector backend.
  Session session;
  const RunResult result = session.run(RunRequest()
                                           .with_circuit(circuit)
                                           .with_repetitions(20000)
                                           .with_seed(4));
  std::cout << "Backend: " << result.backend_name << " ("
            << result.selection_reason << ")\n";
  std::cout << "Sampled histogram for key 'c':\n";
  print_histogram(std::cout, result.measurements.histogram("c"),
                  circuit.num_qubits());

  std::cout << "\nRe-exported QASM:\n" << to_qasm(circuit);
  return 0;
}

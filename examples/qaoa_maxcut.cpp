/// \file qaoa_maxcut.cpp
/// The paper's end-to-end application (Sec. 4.4, Figs. 8–9): MaxCut on
/// an Erdős–Rényi graph via 1-layer QAOA, simulated with the BGLS
/// sampler over a bond-capped MPS backend. Prints the graph, the
/// parameterized circuit, the (γ, β) sweep grid, and the final
/// partition compared against brute force.
///
///   $ ./qaoa_maxcut

#include <iostream>

#include "circuit/diagram.h"
#include "mps/state.h"
#include "qaoa/qaoa.h"
#include "util/table.h"

int main() {
  using namespace bgls;

  // A random Erdős–Rényi graph of 10 nodes and edge probability 0.3
  // (Fig. 8a's setup).
  Rng graph_rng(8);
  const Graph graph = Graph::erdos_renyi(10, 0.3, graph_rng);
  std::cout << "Target " << graph.to_string() << "\n\n";

  const Circuit circuit = qaoa_maxcut_circuit(graph, /*layers=*/1);
  std::cout << "QAOA circuit (γ/β symbolic, Fig. 8b):\n"
            << to_text_diagram(circuit) << "\n";

  // Bond-capped MPS, the paper's custom MPSOptions.
  MPSOptions options;
  options.max_bond_dim = 8;

  Rng rng(2023);
  const QaoaResult result =
      solve_maxcut_qaoa(graph, MPSState(graph.num_vertices(), options),
                        /*gamma_points=*/8, /*beta_points=*/8,
                        /*sweep_repetitions=*/100,
                        /*final_repetitions=*/1000, rng);

  std::cout << "Parameter sweep (Fig. 9a), sampled average cut over the "
               "(γ, β) grid:\n\n";
  ConsoleTable grid({"gamma", "beta", "avg cut"});
  for (const auto& point : result.grid) {
    grid.add_row({ConsoleTable::num(point.gamma, 3),
                  ConsoleTable::num(point.beta, 3),
                  ConsoleTable::num(point.energy, 3)});
  }
  grid.print(std::cout);

  const auto [ideal_partition, ideal_cut] = graph.brute_force_max_cut();
  std::cout << "\nbest parameters: gamma=" << result.best_gamma
            << ", beta=" << result.best_beta
            << " (avg cut " << result.best_energy << ")\n";
  std::cout << "QAOA solution (Fig. 9b): partition "
            << to_string(result.solution, graph.num_vertices()) << " cuts "
            << result.solution_cut << " edges\n";
  std::cout << "brute-force optimum:     partition "
            << to_string(ideal_partition, graph.num_vertices()) << " cuts "
            << ideal_cut << " edges\n";
  return 0;
}

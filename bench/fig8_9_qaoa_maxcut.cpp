/// \file fig8_9_qaoa_maxcut.cpp
/// Reproduces Figs. 8 and 9: QAOA for MaxCut on a random Erdős–Rényi
/// graph of 10 nodes and edge probability 0.3, simulated with BGLS over
/// a bond-capped MPS (the paper's custom MPSOptions). Prints the graph
/// (Fig. 8a), the circuit (Fig. 8b), the (γ, β) sweep with 100 samples
/// per configuration (Fig. 9a), and the final solution partition
/// checked against brute force (Fig. 9b).

#include <fstream>
#include <iostream>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/diagram.h"
#include "mps/state.h"
#include "qaoa/qaoa.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig8_9_qaoa_maxcut");
  using namespace bgls;
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig8_9.json");

  std::cout << "=== Figs. 8-9: QAOA MaxCut on ER(10, 0.3) via MPS ===\n\n";

  Rng graph_rng(8);
  const Graph graph = Graph::erdos_renyi(10, 0.3, graph_rng);
  std::cout << "Fig. 8a  " << graph.to_string() << "\n\n";

  const Circuit circuit = qaoa_maxcut_circuit(graph, 1);
  std::cout << "Fig. 8b  1-layer QAOA circuit ("
            << circuit.num_operations() << " operations):\n"
            << to_text_diagram(circuit) << "\n";

  MPSOptions options;
  options.max_bond_dim = 8;  // the paper's restricted-χ MPSOptions

  Stopwatch total;
  Rng rng(2023);
  const QaoaResult result =
      solve_maxcut_qaoa(graph, MPSState(graph.num_vertices(), options),
                        /*gamma_points=*/8, /*beta_points=*/8,
                        /*sweep_repetitions=*/100,
                        /*final_repetitions=*/1000, rng);
  const double elapsed = total.seconds();

  std::cout << "Fig. 9a  parameter sweep (100 samples per configuration, "
               "best rows):\n\n";
  // Show the best 8 grid points by sampled energy.
  std::vector<QaoaGridPoint> grid = result.grid;
  std::partial_sort(grid.begin(), grid.begin() + 8, grid.end(),
                    [](const QaoaGridPoint& a, const QaoaGridPoint& b) {
                      return a.energy > b.energy;
                    });
  ConsoleTable table({"gamma", "beta", "avg cut"});
  for (int i = 0; i < 8; ++i) {
    table.add_row({ConsoleTable::num(grid[static_cast<std::size_t>(i)].gamma, 3),
                   ConsoleTable::num(grid[static_cast<std::size_t>(i)].beta, 3),
                   ConsoleTable::num(grid[static_cast<std::size_t>(i)].energy, 3)});
  }
  table.print(std::cout);

  const auto [ideal_partition, ideal_cut] = graph.brute_force_max_cut();
  std::cout << "\nFig. 9b  final solution:\n";
  std::cout << "  QAOA best-sampled partition: "
            << to_string(result.solution, graph.num_vertices()) << "  (cut "
            << result.solution_cut << ")\n";
  std::cout << "  brute-force optimum:         "
            << to_string(ideal_partition, graph.num_vertices()) << "  (cut "
            << ideal_cut << ")\n";
  std::cout << "\nend-to-end runtime: " << ConsoleTable::duration(elapsed)
            << " (the paper reports ~5 minutes for the Python stack)\n";

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig8_9_qaoa_maxcut");
  json.key("num_vertices").value(graph.num_vertices());
  json.key("max_bond_dim").value(options.max_bond_dim);
  json.key("end_to_end_seconds").value(elapsed);
  json.key("qaoa_best_cut").value(result.solution_cut);
  json.key("brute_force_cut").value(ideal_cut);
  json.key("optimal_found").value(result.solution_cut == ideal_cut);
  json.key("best_grid_points").begin_array();
  for (int i = 0; i < 8; ++i) {
    const QaoaGridPoint& point = grid[static_cast<std::size_t>(i)];
    json.begin_object();
    json.key("gamma").value(point.gamma);
    json.key("beta").value(point.beta);
    json.key("avg_cut").value(point.energy);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

/// \file fig7_random_mps_vs_sv.cpp
/// Reproduces Fig. 7:
///  (a) for random circuits of fixed (shallow) depth and growing width,
///      MPS sampling is drastically cheaper than the statevector — the
///      degree of entanglement lags the maximum, so tensors stay small
///      while the statevector pays 2^n regardless;
///  (b) for circuits of single-qubit gates plus a *fixed* number of
///      CNOTs, MPS sampling runtime scales near-linearly with width,
///      corroborating the O(n·χ³) amplitude cost.

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "mps/state.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

using namespace bgls;

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig7_random_mps_vs_sv");
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig7.json");
  const std::uint64_t reps = 50;
  struct FixedDepthRow {
    int width = 0;
    double mps_seconds = 0.0;
    double sv_seconds = -1.0;  // < 0 when the dense state is out of reach
    std::size_t chi = 0;
  };
  std::vector<FixedDepthRow> fixed_depth_rows;
  struct FixedCnotRow {
    int width = 0;
    double mps_seconds = 0.0;
    std::size_t chi = 0;
  };
  std::vector<FixedCnotRow> fixed_cnot_rows;
  double mps_slope = 0.0;

  std::cout << "=== Fig. 7a: fixed-depth random circuits, MPS vs "
               "statevector ===\n\n";
  {
    const int depth = 8;
    std::cout << "depth fixed at " << depth << " moments, " << reps
              << " samples:\n\n";
    ConsoleTable table({"width", "mps", "statevector", "mps chi", "speedup"});
    for (const int n : {4, 8, 12, 16, 20, 22, 32}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n) * 3 + 1);
      RandomCircuitOptions options;
      options.num_moments = depth;
      options.op_density = 0.5;
      const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

      Simulator<MPSState> mps_sim{MPSState(n)};
      Rng rng1(7);
      const double tm =
          median_runtime([&] { mps_sim.sample(circuit, reps, rng1); });

      MPSState probe(n);
      for (const auto& op : circuit.all_operations()) probe.apply(op);
      const std::size_t chi_value = probe.max_bond_dimension();
      const std::string chi = std::to_string(chi_value);

      if (n > 22) {
        // 2^32 amplitudes would need 64 GiB: MPS keeps going where the
        // dense representation cannot.
        fixed_depth_rows.push_back({n, tm, -1.0, chi_value});
        table.add_row({std::to_string(n), ConsoleTable::duration(tm),
                       "(out of reach)", chi, "-"});
        continue;
      }
      Simulator<StateVectorState> sv_sim{StateVectorState(n)};
      Rng rng2(9);
      const double ts =
          median_runtime([&] { sv_sim.sample(circuit, reps, rng2); });
      fixed_depth_rows.push_back({n, tm, ts, chi_value});
      table.add_row({std::to_string(n), ConsoleTable::duration(tm),
                     ConsoleTable::duration(ts), chi,
                     ConsoleTable::num(ts / tm, 3) + "x"});
    }
    table.print(std::cout);
    std::cout << "\nThe statevector column grows exponentially with width; "
                 "the MPS column does not.\n\n";
  }

  std::cout << "=== Fig. 7b: fixed number of CNOTs, MPS runtime vs width "
               "===\n\n";
  {
    // Fixed total gate budget (not fixed depth): only the width — and
    // with it the per-amplitude contraction cost — grows, isolating the
    // O(n·χ³) amplitude scaling the paper corroborates here.
    const int num_cnots = 6;
    const int num_single = 60;
    std::cout << num_single << " single-qubit gates plus exactly "
              << num_cnots << " CNOTs on growing registers, " << reps
              << " samples:\n\n";
    ConsoleTable table({"width", "mps runtime", "mps chi"});
    std::vector<double> widths, times;
    for (const int n : {8, 16, 24, 32, 48, 64}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n) * 7 + 3);
      Circuit circuit;
      const std::vector<Gate> one_qubit{Gate::H(), Gate::T(), Gate::X(),
                                        Gate::S(), Gate::Rz(0.4)};
      for (int g = 0; g < num_single; ++g) {
        const auto q = static_cast<Qubit>(circuit_rng.uniform_int(
            static_cast<std::uint64_t>(n)));
        circuit.append(
            Operation(one_qubit[circuit_rng.uniform_int(one_qubit.size())],
                      {q}));
      }
      for (int c = 0; c < num_cnots; ++c) {
        const auto a = static_cast<Qubit>(circuit_rng.uniform_int(
            static_cast<std::uint64_t>(n)));
        auto b = a;
        while (b == a) {
          b = static_cast<Qubit>(circuit_rng.uniform_int(
              static_cast<std::uint64_t>(n)));
        }
        circuit.append(cnot(a, b));
      }
      Simulator<MPSState> sim{MPSState(n)};
      Rng rng(11);
      const double t =
          median_runtime([&] { sim.sample(circuit, reps, rng); });
      MPSState probe(n);
      for (const auto& op : circuit.all_operations()) probe.apply(op);
      widths.push_back(n);
      times.push_back(t);
      fixed_cnot_rows.push_back({n, t, probe.max_bond_dimension()});
      table.add_row({std::to_string(n), ConsoleTable::duration(t),
                     std::to_string(probe.max_bond_dimension())});
    }
    table.print(std::cout);
    mps_slope = log_log_slope(widths, times);
    std::cout << "\nlog-log slope vs width: "
              << ConsoleTable::num(mps_slope, 3)
              << " (near-linear for a fixed degree of entanglement, "
                 "corroborating O(n·chi^3))\n";
  }

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig7_random_mps_vs_sv");
  json.key("repetitions").value(reps);
  json.key("fixed_depth").begin_array();
  for (const FixedDepthRow& row : fixed_depth_rows) {
    json.begin_object();
    json.key("width").value(row.width);
    json.key("mps_seconds").value(row.mps_seconds);
    json.key("sv_seconds");
    if (row.sv_seconds < 0.0) {
      json.null();
    } else {
      json.value(row.sv_seconds);
    }
    json.key("mps_chi").value(row.chi);
    json.end_object();
  }
  json.end_array();
  json.key("fixed_cnots").begin_object();
  json.key("mps_log_log_slope").value(mps_slope);
  json.key("rows").begin_array();
  for (const FixedCnotRow& row : fixed_cnot_rows) {
    json.begin_object();
    json.key("width").value(row.width);
    json.key("mps_seconds").value(row.mps_seconds);
    json.key("mps_chi").value(row.chi);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

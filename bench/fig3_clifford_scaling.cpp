/// \file fig3_clifford_scaling.cpp
/// Reproduces Fig. 3: sampling runtime for random pure-Clifford
/// circuits in CH form as (a) circuit depth and (b) register width are
/// varied, comparing the gate-by-gate sampler against the traditional
/// qubit-by-qubit method (evolve once, then per sample measure each
/// qubit sequentially with collapse). The paper's observation: both
/// methods have the same complexity class here — the CH amplitude costs
/// O(n²) independent of depth, so f(n, d) = O(d·n²) either way and BGLS
/// offers no direct benefit on pure Clifford circuits.
///
/// Results are also written as machine-readable JSON (BENCH_fig3.json,
/// or the path given as argv[1]) for the perf trajectory tracking.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_guard.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "stabilizer/ch_form.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

using namespace bgls;

/// Gate-by-gate sampling on the CH backend.
double time_bgls(const Circuit& circuit, int n, std::uint64_t reps) {
  Simulator<CHState> sim{CHState(n)};
  Rng rng(7);
  return median_runtime([&] { sim.sample(circuit, reps, rng); });
}

/// Traditional sampling per the paper's sketch: (1) initialize and
/// fully run the circuit, then (2) per repetition copy the final state
/// and measure qubits sequentially (marginal + collapse each).
double time_qubit_by_qubit(const Circuit& circuit, int n,
                           std::uint64_t reps) {
  Rng rng(9);
  return median_runtime([&] {
    CHState final_state(n);
    for (const auto& op : circuit.all_operations()) final_state.apply(op);
    for (std::uint64_t r = 0; r < reps; ++r) {
      CHState working = final_state;
      for (int q = 0; q < n; ++q) working.measure_z(q, rng);
    }
  });
}

struct ScalingRow {
  int depth = 0;
  int width = 0;
  double bgls_seconds = 0.0;
  double qubit_by_qubit_seconds = 0.0;
};

void write_rows(JsonWriter& json, const std::vector<ScalingRow>& rows) {
  json.begin_array();
  for (const ScalingRow& row : rows) {
    json.begin_object();
    json.key("depth").value(row.depth);
    json.key("width").value(row.width);
    json.key("bgls_seconds").value(row.bgls_seconds);
    json.key("qubit_by_qubit_seconds").value(row.qubit_by_qubit_seconds);
    json.end_object();
  }
  json.end_array();
}

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig3_clifford_scaling");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_fig3.json";

  std::cout << "=== Fig. 3: Clifford sampling runtime scaling (CH form) "
               "===\n\n";
  const std::uint64_t reps = 100;
  std::vector<ScalingRow> depth_rows, width_rows;
  double depth_slope = 0.0, width_slope = 0.0;

  {
    std::cout << "(a) runtime vs depth, width fixed at n = 24, " << reps
              << " samples:\n\n";
    const int n = 24;
    ConsoleTable table({"depth (moments)", "bgls", "qubit-by-qubit"});
    std::vector<double> depths, bgls_times;
    for (const int depth : {25, 50, 100, 200, 400}) {
      Rng circuit_rng(static_cast<std::uint64_t>(depth));
      const Circuit circuit = random_clifford_circuit(n, depth, circuit_rng);
      const double tb = time_bgls(circuit, n, reps);
      const double tq = time_qubit_by_qubit(circuit, n, reps);
      depths.push_back(depth);
      bgls_times.push_back(tb);
      depth_rows.push_back({depth, n, tb, tq});
      table.add_row({std::to_string(depth), ConsoleTable::duration(tb),
                     ConsoleTable::duration(tq)});
    }
    table.print(std::cout);
    depth_slope = log_log_slope(depths, bgls_times);
    std::cout << "bgls log-log slope vs depth: "
              << ConsoleTable::num(depth_slope, 3)
              << " (≈1: linear in depth, amplitude cost is "
                 "depth-independent)\n\n";
  }

  {
    std::cout << "(b) runtime vs width, depth fixed at 100 moments, " << reps
              << " samples:\n\n";
    const int depth = 100;
    ConsoleTable table({"width (qubits)", "bgls", "qubit-by-qubit"});
    std::vector<double> widths, bgls_times;
    for (const int n : {8, 16, 24, 32, 48, 63}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n) + 100);
      const Circuit circuit = random_clifford_circuit(n, depth, circuit_rng);
      const double tb = time_bgls(circuit, n, reps);
      const double tq = time_qubit_by_qubit(circuit, n, reps);
      widths.push_back(n);
      bgls_times.push_back(tb);
      width_rows.push_back({depth, n, tb, tq});
      table.add_row({std::to_string(n), ConsoleTable::duration(tb),
                     ConsoleTable::duration(tq)});
    }
    table.print(std::cout);
    width_slope = log_log_slope(widths, bgls_times);
    std::cout << "bgls log-log slope vs width: "
              << ConsoleTable::num(width_slope, 3)
              << " (polynomial — the CH representation is efficient at any "
                 "width)\n";
  }
  std::cout << "\nBoth samplers scale comparably on pure Clifford circuits "
               "(the paper's point);\nthe CH framework pays off on "
               "near-Clifford circuits (Figs. 4-5).\n";

  std::ofstream json_file(json_path);
  if (!json_file) {
    std::cerr << "could not open " << json_path << " for writing\n";
    return 1;
  }
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig3_clifford_scaling");
  json.key("repetitions").value(reps);
  json.key("depth_sweep");
  write_rows(json, depth_rows);
  json.key("width_sweep");
  write_rows(json, width_rows);
  json.key("bgls_log_log_slope_vs_depth").value(depth_slope);
  json.key("bgls_log_log_slope_vs_width").value(width_slope);
  json.end_object();
  json_file << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

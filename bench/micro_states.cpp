/// \file micro_states.cpp
/// google-benchmark microbenchmarks of the per-backend kernels behind
/// the paper's f(n, d) cost model (Secs. 2, 4.1.2, 4.3.3):
///  - statevector apply/probability (f dominated by 2^n gate kernels,
///    O(1) probability lookups),
///  - CH-form Clifford updates and the O(n²)-class amplitude (bit-packed
///    to O(n) word operations at n ≤ 63), independent of depth,
///  - MPS two-qubit splits and reduced-network amplitudes (O(n·χ³)),
///  - the exact BTRS binomial sampler that powers multinomial
///    dictionary splitting.
///
/// The statevector apply benches run twice: through the gate-class
/// specialized kernels (statevector/kernels.h) and through the
/// forced-generic dense path (the *_Generic variants), so one run of
/// this binary records the kernel speedup in BENCH_micro_states.json.

#include <benchmark/benchmark.h>

#include "bench_guard.h"

#include <string>
#include <vector>

#include "circuit/random.h"
#include "mps/state.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "stabilizer/ch_form.h"
#include "stabilizer/tableau.h"
#include "statevector/kernels.h"
#include "statevector/state.h"
#include "util/rng.h"

namespace {

using namespace bgls;

// Each statevector apply bench has a specialized-kernel and a
// forced-generic variant so the speedup is recorded in one run.
/// Pre-built per-qubit operations, the pattern the samplers execute
/// (Circuit::all_operations() copies share each gate's memoized
/// unitary+classification, so construction cost is paid once, not per
/// apply).
std::vector<Operation> per_qubit_ops(int n, Operation (*make)(Qubit)) {
  std::vector<Operation> ops;
  ops.reserve(static_cast<std::size_t>(n));
  for (int q = 0; q < n; ++q) ops.push_back(make(q));
  return ops;
}

template <bool kForceGeneric>
void apply_h_body(benchmark::State& state) {
  const kernels::ForceGenericScope scope(kForceGeneric);
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  const std::vector<Operation> ops = per_qubit_ops(n, [](Qubit q) {
    return h(q);
  });
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply(ops[q]);
    q = (q + 1) % ops.size();
  }
  state.SetComplexityN(1 << n);
}
void BM_StateVector_ApplyH(benchmark::State& state) {
  apply_h_body<false>(state);
}
BENCHMARK(BM_StateVector_ApplyH)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Complexity(benchmark::oN);
void BM_StateVector_ApplyH_Generic(benchmark::State& state) {
  apply_h_body<true>(state);
}
BENCHMARK(BM_StateVector_ApplyH_Generic)->Arg(8)->Arg(12)->Arg(16)->Arg(20)->Complexity(benchmark::oN);

template <bool kForceGeneric>
void apply_cnot_body(benchmark::State& state) {
  const kernels::ForceGenericScope scope(kForceGeneric);
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  psi.apply(h(0));
  std::vector<Operation> ops;
  for (int q = 0; q < n; ++q) ops.push_back(cnot(q, (q + 1) % n));
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply(ops[q]);
    q = (q + 1) % ops.size();
  }
}
void BM_StateVector_ApplyCnot(benchmark::State& state) {
  apply_cnot_body<false>(state);
}
BENCHMARK(BM_StateVector_ApplyCnot)->Arg(8)->Arg(16)->Arg(20);
void BM_StateVector_ApplyCnot_Generic(benchmark::State& state) {
  apply_cnot_body<true>(state);
}
BENCHMARK(BM_StateVector_ApplyCnot_Generic)->Arg(8)->Arg(16)->Arg(20);

template <bool kForceGeneric>
void apply_cz_body(benchmark::State& state) {
  // Diagonal kernel showcase: CZ rescales one quadrant of the index
  // space, the generic path runs the full 4x4 matmul.
  const kernels::ForceGenericScope scope(kForceGeneric);
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  for (int q = 0; q < n; ++q) psi.apply(h(q));
  std::vector<Operation> ops;
  for (int q = 0; q < n; ++q) ops.push_back(cz(q, (q + 1) % n));
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply(ops[q]);
    q = (q + 1) % ops.size();
  }
}
void BM_StateVector_ApplyCz(benchmark::State& state) {
  apply_cz_body<false>(state);
}
BENCHMARK(BM_StateVector_ApplyCz)->Arg(8)->Arg(16)->Arg(20);
void BM_StateVector_ApplyCz_Generic(benchmark::State& state) {
  apply_cz_body<true>(state);
}
BENCHMARK(BM_StateVector_ApplyCz_Generic)->Arg(8)->Arg(16)->Arg(20);

template <bool kForceGeneric>
void apply_t_body(benchmark::State& state) {
  const kernels::ForceGenericScope scope(kForceGeneric);
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  for (int q = 0; q < n; ++q) psi.apply(h(q));
  const std::vector<Operation> ops = per_qubit_ops(n, [](Qubit q) {
    return t(q);
  });
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply(ops[q]);
    q = (q + 1) % ops.size();
  }
}
// Arg(8) exposes the per-apply fixed costs (matrix build +
// classification, now memoized on Gate): at 256 amplitudes the
// amplitude pass is nearly free, so this is where the gate cache shows.
void BM_StateVector_ApplyT(benchmark::State& state) {
  apply_t_body<false>(state);
}
BENCHMARK(BM_StateVector_ApplyT)->Arg(8)->Arg(20);
void BM_StateVector_ApplyT_Generic(benchmark::State& state) {
  apply_t_body<true>(state);
}
BENCHMARK(BM_StateVector_ApplyT_Generic)->Arg(8)->Arg(20);

// The gate-classification cache, measured directly: a cold compile
// (matrix construction + structural classification, what every apply
// used to pay) against the memoized lookup every apply now performs.
void BM_Gate_CompileUnitaryUncached(benchmark::State& state) {
  const Gate gate = Gate::CX();
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::compile(gate.unitary()));
  }
}
BENCHMARK(BM_Gate_CompileUnitaryUncached);

void BM_Gate_CompiledUnitaryCached(benchmark::State& state) {
  const Gate gate = Gate::CX();
  for (auto _ : state) {
    benchmark::DoNotOptimize(gate.compiled_unitary());
  }
}
BENCHMARK(BM_Gate_CompiledUnitaryCached);

void BM_StateVector_SampleN1000(benchmark::State& state) {
  // Batched inverse-CDF draws: one probabilities pass, then O(n) per
  // draw — the conventional direct baseline's sampling cost.
  const int n = static_cast<int>(state.range(0));
  Rng scramble(19);
  RandomCircuitOptions options;
  options.num_moments = 4;
  const Circuit circuit = generate_random_circuit(n, options, scramble);
  StateVectorState psi(n);
  for (const auto& op : circuit.all_operations()) psi.apply(op);
  Rng rng(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi.sample_n(1000, rng));
  }
}
BENCHMARK(BM_StateVector_SampleN1000)->Arg(12)->Arg(20);

void BM_StateVector_Probability(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  psi.apply(h(0));
  Bitstring b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi.probability(b));
    b = (b + 1) & ((Bitstring{1} << n) - 1);
  }
}
BENCHMARK(BM_StateVector_Probability)->Arg(20);

void BM_Ch_ApplyCnot(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  CHState ch(n);
  for (int q = 0; q < n; ++q) ch.apply_h(q);
  int q = 0;
  for (auto _ : state) {
    ch.apply_cx(q, (q + 1) % n);
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_Ch_ApplyCnot)->Arg(16)->Arg(32)->Arg(63);

void BM_Ch_ApplyH(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  CHState ch(n);
  const Circuit scramble = random_clifford_circuit(n, 20, rng);
  for (const auto& op : scramble.all_operations()) ch.apply(op);
  int q = 0;
  for (auto _ : state) {
    ch.apply_h(q);
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_Ch_ApplyH)->Arg(16)->Arg(32)->Arg(63);

void BM_Ch_Amplitude(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  CHState ch(n);
  const Circuit scramble = random_clifford_circuit(n, 30, rng);
  for (const auto& op : scramble.all_operations()) ch.apply(op);
  Bitstring b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.amplitude(b));
    b = (b * 2862933555777941757ULL + 3037000493ULL) &
        ((Bitstring{1} << n) - 1);
  }
}
BENCHMARK(BM_Ch_Amplitude)->Arg(16)->Arg(32)->Arg(63);

void BM_Tableau_Probability(benchmark::State& state) {
  // The ablation motivating the CH form: an Aaronson–Gottesman tableau
  // recovers bitstring probabilities only through sequential projection
  // of a copy (O(n³)), vs the CH form's direct amplitude.
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  TableauState tab(n);
  const Circuit scramble = random_clifford_circuit(n, 30, rng);
  for (const auto& op : scramble.all_operations()) tab.apply(op);
  Bitstring b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tab.probability(b));
    b = (b * 2862933555777941757ULL + 3037000493ULL) &
        ((Bitstring{1} << n) - 1);
  }
}
BENCHMARK(BM_Tableau_Probability)->Arg(16)->Arg(32)->Arg(63);

void BM_Mps_TwoQubitGate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  MPSState mps(n);
  for (int q = 0; q < n; ++q) mps.apply(h(q));
  int q = 0;
  for (auto _ : state) {
    mps.apply(cnot(q, (q + 1) % n));
    q = (q + 1) % n;
  }
}
BENCHMARK(BM_Mps_TwoQubitGate)->Arg(8)->Arg(16)->Arg(32);

void BM_Mps_Amplitude(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  const Circuit circuit = random_fixed_cnot_circuit(n, 6, 6, rng);
  MPSState mps(n);
  for (const auto& op : circuit.all_operations()) mps.apply(op);
  Bitstring b = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mps.amplitude(b));
    b = (b + 0x9E3779B97F4A7C15ULL) & ((Bitstring{1} << n) - 1);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_Mps_Amplitude)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Complexity(benchmark::oN);

// Telemetry overhead pair (ISSUE acceptance: the before/after row):
// the same n=20 H apply with the runtime switch on vs off. The on row
// pays the kernel-class counter plus, at this dimension, the timed
// histogram's two clock reads; the delta is the per-apply telemetry
// cost. With -DBGLS_ENABLE_TELEMETRY=OFF both rows measure the same
// inert code.
template <bool kTelemetryOn>
void telemetry_apply_body(benchmark::State& state) {
  const obs::EnabledScope scope(kTelemetryOn);
  const int n = static_cast<int>(state.range(0));
  StateVectorState psi(n);
  const std::vector<Operation> ops = per_qubit_ops(n, [](Qubit q) {
    return h(q);
  });
  std::size_t q = 0;
  for (auto _ : state) {
    psi.apply(ops[q]);
    q = (q + 1) % ops.size();
  }
}
void BM_Telemetry_ApplyH_Enabled(benchmark::State& state) {
  telemetry_apply_body<true>(state);
}
BENCHMARK(BM_Telemetry_ApplyH_Enabled)->Arg(20);
void BM_Telemetry_ApplyH_Disabled(benchmark::State& state) {
  telemetry_apply_body<false>(state);
}
BENCHMARK(BM_Telemetry_ApplyH_Disabled)->Arg(20);

// Structured-log emit pair: one warn-level record with a typical field
// set through the global logger's ring (no file sink), runtime switch
// on vs off. The off row is the cost the serving hot paths pay at
// their (never-taken) log sites; with -DBGLS_ENABLE_TELEMETRY=OFF both
// rows measure the same compiled-out no-op.
template <bool kTelemetryOn>
void log_emit_body(benchmark::State& state) {
  const obs::EnabledScope scope(kTelemetryOn);
  obs::Logger::global().reset_for_testing();
  std::uint64_t job = 0;
  for (auto _ : state) {
    obs::log(obs::LogLevel::kWarn, "bench", "slow request",
             {{"op", "wait"}, {"ms", 12.5}}, /*trace_id=*/424242, ++job);
  }
  obs::Logger::global().reset_for_testing();
}
void BM_Log_Emit_Enabled(benchmark::State& state) {
  log_emit_body<true>(state);
}
BENCHMARK(BM_Log_Emit_Enabled);
void BM_Log_Emit_Disabled(benchmark::State& state) {
  log_emit_body<false>(state);
}
BENCHMARK(BM_Log_Emit_Disabled);

void BM_Rng_BinomialBtrs(benchmark::State& state) {
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.binomial(1000000, 0.37));
  }
}
BENCHMARK(BM_Rng_BinomialBtrs);

void BM_Rng_Multinomial8(benchmark::State& state) {
  Rng rng(13);
  const std::vector<double> weights{1, 2, 3, 4, 4, 3, 2, 1};
  std::vector<std::uint64_t> counts(8);
  for (auto _ : state) {
    rng.multinomial(1000000, weights, counts);
    benchmark::DoNotOptimize(counts.data());
  }
}
BENCHMARK(BM_Rng_Multinomial8);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults the JSON output file so every run
// leaves a machine-readable record (BENCH_micro_states.json) for the
// perf-trajectory tracking, matching BENCH_fig2.json. Explicit
// --benchmark_out flags still win.
int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("micro_states");
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag = "--benchmark_out=BENCH_micro_states.json";
  std::string format_flag = "--benchmark_out_format=json";
  bool has_out = false, has_format = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg(argv[i]);
    has_out |= arg.rfind("--benchmark_out=", 0) == 0;
    has_format |= arg.rfind("--benchmark_out_format=", 0) == 0;
  }
  if (!has_out) args.push_back(out_flag.data());
  if (!has_format) args.push_back(format_flag.data());
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  // The JSON context's "library_build_type" describes the *benchmark
  // library* package, not this code; record bgls's own build mode so
  // the file is self-describing (bench_guard.h enforces release).
#ifdef NDEBUG
  benchmark::AddCustomContext("bgls_build_type", "release");
#else
  benchmark::AddCustomContext("bgls_build_type", "debug (allowed via env)");
#endif
#ifdef BGLS_HAVE_OPENMP
  benchmark::AddCustomContext("bgls_openmp", "on");
#else
  benchmark::AddCustomContext("bgls_openmp", "off");
#endif
#ifdef BGLS_HAVE_AVX2
  benchmark::AddCustomContext("bgls_avx2", "on");
#else
  benchmark::AddCustomContext("bgls_avx2", "off");
#endif
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

/// \file tips_circuit_optimization.cpp
/// Reproduces the circuit-optimization experiment from the paper's tips
/// page (Sec. 3.2.2): optimize_for_bgls fuses runs of single-qubit
/// gates so the bitstring is updated once per run instead of once per
/// gate. On random eight-qubit circuits with up to 50 layers the paper
/// reports 1.5–2x runtime improvements.
///
/// Extended with the two-qubit-fusion ablation: each workload runs raw,
/// with pass 1 only (the paper's fusion), and with pass 1 + pass 2
/// (single-qubit runs absorbed into adjacent two-qubit gates). Results
/// are also written as machine-readable JSON (BENCH_tips.json, or the
/// path given as argv[1]) for the perf trajectory tracking.

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_guard.h"
#include "circuit/random.h"
#include "core/optimize.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

using namespace bgls;

struct AblationRow {
  int layers = 0;
  std::size_t ops_raw = 0;
  std::size_t ops_pass1 = 0;
  std::size_t ops_pass12 = 0;
  std::size_t gates_fused_into_two_qubit = 0;
  double raw_seconds = 0.0;
  double pass1_seconds = 0.0;
  double pass12_seconds = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("tips_circuit_optimization");
  const std::string json_path = argc > 1 ? argv[1] : "BENCH_tips.json";

  const int n = 8;  // the paper's eight-qubit workload
  const std::uint64_t reps = 2000;

  std::cout << "=== tips: optimize_for_bgls speedup on random " << n
            << "-qubit circuits ===\n\n";
  ConsoleTable table({"layers", "ops raw", "ops 1q", "ops 1q+2q", "raw",
                      "1q fused", "1q+2q fused", "speedup 1q",
                      "speedup 1q+2q"});
  std::vector<AblationRow> rows;
  for (const int layers : {10, 20, 30, 40, 50}) {
    Rng circuit_rng(static_cast<std::uint64_t>(layers));
    RandomCircuitOptions options;
    options.num_moments = layers;
    options.op_density = 0.9;
    // Mostly single-qubit gates with occasional entanglers — the regime
    // where fusion pays.
    options.gate_domain = {Gate::H(), Gate::T(), Gate::S(),  Gate::X(),
                           Gate::Z(), Gate::Rz(0.31), Gate::CX()};
    const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
    OptimizationReport report1, report12;
    const Circuit pass1 = optimize_for_bgls(
        circuit, OptimizeOptions{.fuse_into_two_qubit_gates = false},
        &report1);
    const Circuit pass12 = optimize_for_bgls(circuit, &report12);

    Simulator<StateVectorState> sim{StateVectorState(n)};
    Rng rng1(3), rng2(3), rng3(3);
    AblationRow row;
    row.layers = layers;
    row.ops_raw = report1.operations_before;
    row.ops_pass1 = report1.operations_after;
    row.ops_pass12 = report12.operations_after;
    row.gates_fused_into_two_qubit = report12.gates_fused_into_two_qubit;
    row.raw_seconds =
        median_runtime([&] { sim.sample(circuit, reps, rng1); });
    row.pass1_seconds =
        median_runtime([&] { sim.sample(pass1, reps, rng2); });
    row.pass12_seconds =
        median_runtime([&] { sim.sample(pass12, reps, rng3); });
    rows.push_back(row);
    table.add_row(
        {std::to_string(layers), std::to_string(row.ops_raw),
         std::to_string(row.ops_pass1), std::to_string(row.ops_pass12),
         ConsoleTable::duration(row.raw_seconds),
         ConsoleTable::duration(row.pass1_seconds),
         ConsoleTable::duration(row.pass12_seconds),
         ConsoleTable::num(row.raw_seconds / row.pass1_seconds, 3) + "x",
         ConsoleTable::num(row.raw_seconds / row.pass12_seconds, 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected range per the paper's tips page (pass 1): 1.5x - "
               "2x; pass 2 absorbs\nsingle-qubit runs into neighboring "
               "two-qubit gates on top of that.\n";

  std::ofstream json_file(json_path);
  if (!json_file) {
    std::cerr << "could not open " << json_path << " for writing\n";
    return 1;
  }
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("tips_circuit_optimization");
  json.key("num_qubits").value(n);
  json.key("repetitions").value(reps);
  json.key("rows").begin_array();
  for (const AblationRow& row : rows) {
    json.begin_object();
    json.key("layers").value(row.layers);
    json.key("operations_raw").value(row.ops_raw);
    json.key("operations_after_pass1").value(row.ops_pass1);
    json.key("operations_after_pass12").value(row.ops_pass12);
    json.key("gates_fused_into_two_qubit")
        .value(row.gates_fused_into_two_qubit);
    json.key("raw_seconds").value(row.raw_seconds);
    json.key("pass1_seconds").value(row.pass1_seconds);
    json.key("pass12_seconds").value(row.pass12_seconds);
    json.key("speedup_pass1").value(row.raw_seconds / row.pass1_seconds);
    json.key("speedup_pass12").value(row.raw_seconds / row.pass12_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  std::cout << "\nwrote " << json_path << "\n";
  return 0;
}

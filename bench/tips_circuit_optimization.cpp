/// \file tips_circuit_optimization.cpp
/// Reproduces the circuit-optimization experiment from the paper's tips
/// page (Sec. 3.2.2): optimize_for_bgls fuses runs of single-qubit
/// gates so the bitstring is updated once per run instead of once per
/// gate. On random eight-qubit circuits with up to 50 layers the paper
/// reports 1.5–2x runtime improvements.

#include <iostream>

#include "circuit/random.h"
#include "core/optimize.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"
#include "util/timing.h"

int main() {
  using namespace bgls;

  const int n = 8;  // the paper's eight-qubit workload
  const std::uint64_t reps = 2000;

  std::cout << "=== tips: optimize_for_bgls speedup on random " << n
            << "-qubit circuits ===\n\n";
  ConsoleTable table({"layers", "ops before", "ops after", "raw", "optimized",
                      "speedup"});
  for (const int layers : {10, 20, 30, 40, 50}) {
    Rng circuit_rng(static_cast<std::uint64_t>(layers));
    RandomCircuitOptions options;
    options.num_moments = layers;
    options.op_density = 0.9;
    // Mostly single-qubit gates with occasional entanglers — the regime
    // where fusion pays.
    options.gate_domain = {Gate::H(), Gate::T(), Gate::S(),  Gate::X(),
                           Gate::Z(), Gate::Rz(0.31), Gate::CX()};
    const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
    OptimizationReport report;
    const Circuit optimized = optimize_for_bgls(circuit, &report);

    Simulator<StateVectorState> sim{StateVectorState(n)};
    Rng rng1(3), rng2(3);
    const double raw =
        median_runtime([&] { sim.sample(circuit, reps, rng1); });
    const double fast =
        median_runtime([&] { sim.sample(optimized, reps, rng2); });
    table.add_row({std::to_string(layers),
                   std::to_string(report.operations_before),
                   std::to_string(report.operations_after),
                   ConsoleTable::duration(raw), ConsoleTable::duration(fast),
                   ConsoleTable::num(raw / fast, 3) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nExpected range per the paper's tips page: 1.5x - 2x.\n";
  return 0;
}

/// \file bench_json.h
/// Shared BENCH_*.json plumbing for the figure benches: resolve the
/// output path from argv, open it (or fail loudly), and print the
/// closing "wrote <path>" line. Keeps the diffable-JSON convention
/// (ROADMAP "Perf trajectory tracking") in one place instead of copied
/// into every bench main.

#pragma once

#include <fstream>
#include <iostream>
#include <string>

namespace bgls::bench {

/// argv[1] when given, else the bench's default BENCH_*.json name.
inline std::string bench_json_path(int argc, char** argv,
                                   const std::string& default_path) {
  return argc > 1 ? argv[1] : default_path;
}

/// Opens `path` for writing; on failure prints the shared error line.
/// Callers test the stream and bail, as with a plain ofstream.
inline std::ofstream open_bench_json(const std::string& path) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "could not open " << path << " for writing\n";
  }
  return file;
}

/// The closing "wrote <path>" line every bench prints.
inline void report_bench_json(const std::string& path) {
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace bgls::bench

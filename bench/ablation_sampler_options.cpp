/// \file ablation_sampler_options.cpp
/// Ablations of the design choices DESIGN.md calls out:
///  1. skipping candidate updates for diagonal gates (exact; the
///     candidate distribution is invariant under diagonal unitaries) on
///     a ZZ-heavy QAOA-style circuit;
///  2. dictionary batching granularity: peak dictionary size and
///     runtime across register widths (complementing Fig. 2's
///     repetition sweep).

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("ablation_sampler_options");
  using namespace bgls;
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_ablation.json");

  double diag_plain_seconds = 0.0;
  double diag_skip_seconds = 0.0;
  std::size_t diag_updates_skipped = 0;
  struct WidthRow {
    int width = 0;
    std::size_t dict_peak = 0;
    double seconds = 0.0;
  };
  std::vector<WidthRow> width_rows;

  std::cout << "=== Ablation 1: skip_diagonal_updates on a diagonal-heavy "
               "circuit ===\n\n";
  {
    // QAOA-like layer structure: H wall, many ZZ gates, Rx mixer.
    const int n = 10;
    Circuit circuit;
    for (int q = 0; q < n; ++q) circuit.append(h(q));
    Rng pair_rng(5);
    for (int i = 0; i < 40; ++i) {
      const auto a = static_cast<Qubit>(pair_rng.uniform_int(n));
      auto b = a;
      while (b == a) b = static_cast<Qubit>(pair_rng.uniform_int(n));
      circuit.append(zz(0.37 + 0.01 * i, a, b));
    }
    for (int q = 0; q < n; ++q) circuit.append(rx(0.9, q));

    const std::uint64_t reps = 5000;
    Simulator<StateVectorState> plain{StateVectorState(n)};
    SimulatorOptions skip;
    skip.skip_diagonal_updates = true;
    Simulator<StateVectorState> skipping{StateVectorState(n), skip};
    Rng rng1(7), rng2(7);
    const double t_plain =
        median_runtime([&] { plain.sample(circuit, reps, rng1); });
    const double t_skip =
        median_runtime([&] { skipping.sample(circuit, reps, rng2); });
    diag_plain_seconds = t_plain;
    diag_skip_seconds = t_skip;
    diag_updates_skipped = skipping.last_run_stats().diagonal_updates_skipped;

    ConsoleTable table({"variant", "runtime", "candidate updates skipped"});
    table.add_row({"update on every gate", ConsoleTable::duration(t_plain),
                   "0"});
    table.add_row(
        {"skip diagonal gates", ConsoleTable::duration(t_skip),
         std::to_string(skipping.last_run_stats().diagonal_updates_skipped)});
    table.print(std::cout);
    std::cout << "speedup: " << ConsoleTable::num(t_plain / t_skip, 3)
              << "x (exact — diagonal unitaries cannot change the candidate "
                 "distribution)\n\n";
  }

  std::cout << "=== Ablation 2: dictionary saturation across widths ===\n\n";
  {
    const std::uint64_t reps = 100000;
    ConsoleTable table(
        {"width", "dict peak", "2^n ceiling", "batched runtime"});
    for (const int n : {4, 6, 8, 10, 12}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n));
      RandomCircuitOptions options;
      options.num_moments = 20;
      const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
      Simulator<StateVectorState> sim{StateVectorState(n)};
      Rng rng(9);
      const double t = median_runtime([&] { sim.sample(circuit, reps, rng); });
      width_rows.push_back(
          {n, sim.last_run_stats().max_dictionary_size, t});
      table.add_row({std::to_string(n),
                     std::to_string(sim.last_run_stats().max_dictionary_size),
                     std::to_string(1u << n), ConsoleTable::duration(t)});
    }
    table.print(std::cout);
    std::cout << "\nThe dictionary peak is bounded by min(2^n, repetitions, "
                 "support of the\ninstantaneous distribution) — it can never "
                 "exceed the 2^n ceiling, and a\nconcentrated state keeps it "
                 "far below.\n";
  }

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("ablation_sampler_options");
  json.key("skip_diagonal_updates").begin_object();
  json.key("plain_seconds").value(diag_plain_seconds);
  json.key("skip_seconds").value(diag_skip_seconds);
  json.key("speedup").value(diag_plain_seconds / diag_skip_seconds);
  json.key("updates_skipped").value(diag_updates_skipped);
  json.end_object();
  json.key("dictionary_saturation").begin_array();
  for (const WidthRow& row : width_rows) {
    json.begin_object();
    json.key("width").value(row.width);
    json.key("dictionary_peak").value(row.dict_peak);
    json.key("ceiling").value(std::uint64_t{1} << row.width);
    json.key("batched_seconds").value(row.seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

/// \file ablation_sampler_options.cpp
/// Ablations of the design choices DESIGN.md calls out:
///  1. skipping candidate updates for diagonal gates (exact; the
///     candidate distribution is invariant under diagonal unitaries) on
///     a ZZ-heavy QAOA-style circuit;
///  2. dictionary batching granularity: peak dictionary size and
///     runtime across register widths (complementing Fig. 2's
///     repetition sweep).

#include <iostream>

#include "bench_guard.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"
#include "util/timing.h"

int main() {
  BGLS_REQUIRE_RELEASE_BENCH("ablation_sampler_options");
  using namespace bgls;

  std::cout << "=== Ablation 1: skip_diagonal_updates on a diagonal-heavy "
               "circuit ===\n\n";
  {
    // QAOA-like layer structure: H wall, many ZZ gates, Rx mixer.
    const int n = 10;
    Circuit circuit;
    for (int q = 0; q < n; ++q) circuit.append(h(q));
    Rng pair_rng(5);
    for (int i = 0; i < 40; ++i) {
      const auto a = static_cast<Qubit>(pair_rng.uniform_int(n));
      auto b = a;
      while (b == a) b = static_cast<Qubit>(pair_rng.uniform_int(n));
      circuit.append(zz(0.37 + 0.01 * i, a, b));
    }
    for (int q = 0; q < n; ++q) circuit.append(rx(0.9, q));

    const std::uint64_t reps = 5000;
    Simulator<StateVectorState> plain{StateVectorState(n)};
    SimulatorOptions skip;
    skip.skip_diagonal_updates = true;
    Simulator<StateVectorState> skipping{StateVectorState(n), skip};
    Rng rng1(7), rng2(7);
    const double t_plain =
        median_runtime([&] { plain.sample(circuit, reps, rng1); });
    const double t_skip =
        median_runtime([&] { skipping.sample(circuit, reps, rng2); });

    ConsoleTable table({"variant", "runtime", "candidate updates skipped"});
    table.add_row({"update on every gate", ConsoleTable::duration(t_plain),
                   "0"});
    table.add_row(
        {"skip diagonal gates", ConsoleTable::duration(t_skip),
         std::to_string(skipping.last_run_stats().diagonal_updates_skipped)});
    table.print(std::cout);
    std::cout << "speedup: " << ConsoleTable::num(t_plain / t_skip, 3)
              << "x (exact — diagonal unitaries cannot change the candidate "
                 "distribution)\n\n";
  }

  std::cout << "=== Ablation 2: dictionary saturation across widths ===\n\n";
  {
    const std::uint64_t reps = 100000;
    ConsoleTable table(
        {"width", "dict peak", "2^n ceiling", "batched runtime"});
    for (const int n : {4, 6, 8, 10, 12}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n));
      RandomCircuitOptions options;
      options.num_moments = 20;
      const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
      Simulator<StateVectorState> sim{StateVectorState(n)};
      Rng rng(9);
      const double t = median_runtime([&] { sim.sample(circuit, reps, rng); });
      table.add_row({std::to_string(n),
                     std::to_string(sim.last_run_stats().max_dictionary_size),
                     std::to_string(1u << n), ConsoleTable::duration(t)});
    }
    table.print(std::cout);
    std::cout << "\nThe dictionary peak is bounded by min(2^n, repetitions, "
                 "support of the\ninstantaneous distribution) — it can never "
                 "exceed the 2^n ceiling, and a\nconcentrated state keeps it "
                 "far below.\n";
  }
  return 0;
}

/// \file fig5_overlap_vs_tcount.cpp
/// Reproduces Fig. 5: starting from a random pure-Clifford circuit of
/// 100 moments, progressively replace more single-qubit gates with T
/// and plot the overlap attained by sum-over-Cliffords sampling at a
/// fixed sample budget. As the circuit becomes increasingly
/// non-Clifford the overlap decreases — "adequate performance is
/// limited by the degree in which the circuit is non-Clifford".

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "stabilizer/near_clifford.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"

namespace {

using namespace bgls;

Distribution exact_distribution(const Circuit& circuit, int n) {
  StateVectorState state(n);
  Rng rng(0);
  evolve(circuit, state, rng);
  Distribution dist;
  for (Bitstring b = 0; b < (Bitstring{1} << n); ++b) {
    const double p = state.probability(b);
    if (p > 1e-15) dist[b] = p;
  }
  return dist;
}

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig5_overlap_vs_tcount");
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig5.json");
  const int n = 6;
  const int moments = 100;  // the paper's 100-moment base circuit
  const std::uint64_t reps = 3000;
  Rng circuit_rng(31);
  const Circuit base = random_clifford_circuit(n, moments, circuit_rng);

  std::cout << "=== Fig. 5: overlap vs number of T gates ===\n\n";
  std::cout << "workload: random " << n << "-qubit, " << moments
            << "-moment Clifford circuit; " << reps
            << " samples per point\n\n";

  struct Row {
    int t_count = 0;
    double overlap = 0.0;
  };
  std::vector<Row> rows;
  ConsoleTable table({"#T gates", "overlap with ideal"});
  Rng sub_rng(37);
  for (const int t_count : {0, 1, 2, 4, 6, 8, 12, 16}) {
    Rng sub_seed(static_cast<std::uint64_t>(t_count) * 41 + 1);
    const Circuit circuit =
        t_count == 0 ? base
                     : with_random_t_substitutions(base, t_count, sub_seed);
    Simulator<CHState> sim{
        CHState(n),
        [](const Operation& op, CHState& state, Rng& inner) {
          act_on_near_clifford(op, state, inner);
        },
        [](const CHState& state, Bitstring b) { return state.probability(b); },
        SimulatorOptions{.skip_diagonal_updates = false,
                         .disable_sample_parallelization = true}};
    Rng rng(43);
    const Counts counts = sim.sample(circuit, reps, rng);
    const double overlap = distribution_overlap(
        normalize(counts), exact_distribution(circuit, n));
    rows.push_back({t_count, overlap});
    table.add_row({std::to_string(t_count), ConsoleTable::num(overlap, 4)});
  }
  table.print(std::cout);
  std::cout << "\nOverlap decreases as T gates are added: 2^#T stabilizer\n"
               "branches dilute a fixed sample budget.\n";

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig5_overlap_vs_tcount");
  json.key("num_qubits").value(n);
  json.key("num_moments").value(moments);
  json.key("samples_per_point").value(reps);
  json.key("rows").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("t_count").value(row.t_count);
    json.key("overlap").value(row.overlap);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

#!/usr/bin/env python3
"""Compare two BENCH_*.json trees and flag performance regressions.

Usage:
    bench_diff.py OLD NEW [--threshold 0.15] [--quiet]

OLD and NEW are directories (every BENCH_*.json inside is considered)
or individual JSON files. Two formats are understood:

 - google-benchmark output (top-level "benchmarks" list, e.g.
   BENCH_micro_states.json): one metric per benchmark name, value =
   real_time normalized to nanoseconds;
 - the library's JsonWriter reports (BENCH_fig2.json & friends): the
   tree is flattened and every numeric leaf whose key is "seconds" or
   ends in "_seconds" becomes a metric keyed by its JSON path.

Only metrics present on BOTH sides are compared (lower is better).
A metric counts as a regression when new > old * (1 + threshold);
the exit code is non-zero iff any regression was found, so CI can run
this as an informational step (continue-on-error) that still paints
red when the perf trajectory slips.

Metrics present on only one side are reported informationally — bench
workloads legitimately evolve across PRs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

TIME_UNIT_TO_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def is_time_key(key: str) -> bool:
    return key == "seconds" or key.endswith("_seconds")


def flatten_time_leaves(node, path, out):
    """Collects numeric `*seconds` leaves of a JsonWriter report."""
    if isinstance(node, dict):
        for key, value in node.items():
            if is_time_key(key) and isinstance(value, (int, float)):
                out[f"{path}/{key}"] = float(value)
            else:
                flatten_time_leaves(value, f"{path}/{key}", out)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            flatten_time_leaves(value, f"{path}[{i}]", out)


def extract_metrics(doc) -> dict[str, float]:
    """Metric name -> time (lower is better) for one parsed JSON file."""
    metrics: dict[str, float] = {}
    if isinstance(doc, dict) and isinstance(doc.get("benchmarks"), list):
        for bench in doc["benchmarks"]:
            name = bench.get("name")
            real_time = bench.get("real_time")
            if not isinstance(name, str) or not isinstance(
                real_time, (int, float)
            ):
                continue
            # Skip aggregate rows (mean/median/stddev of repetitions);
            # compare like against like only.
            if bench.get("run_type") == "aggregate":
                continue
            scale = TIME_UNIT_TO_NS.get(bench.get("time_unit", "ns"), 1.0)
            metrics[name] = float(real_time) * scale
    else:
        flatten_time_leaves(doc, "", metrics)
    return metrics


def load_tree(root: Path) -> dict[str, dict[str, float]]:
    """file name -> metrics for a directory (or a single file)."""
    if root.is_file():
        paths = [root]
    elif root.is_dir():
        paths = sorted(root.glob("BENCH_*.json"))
    else:
        sys.exit(f"bench_diff: '{root}' is neither a file nor a directory")
    tree = {}
    for path in paths:
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"note: skipping unreadable {path}: {err}")
            continue
        tree[path.name] = extract_metrics(doc)
    return tree


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two BENCH_*.json trees for perf regressions."
    )
    parser.add_argument("old", type=Path, help="baseline tree or file")
    parser.add_argument("new", type=Path, help="candidate tree or file")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.15,
        help="relative slowdown that counts as a regression (default 0.15)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="print regressions and the summary only",
    )
    args = parser.parse_args()

    old_tree = load_tree(args.old)
    new_tree = load_tree(args.new)

    compared = 0
    regressions: list[str] = []
    improvements = 0
    for file_name in sorted(set(old_tree) & set(new_tree)):
        old_metrics = old_tree[file_name]
        new_metrics = new_tree[file_name]
        only_old = sorted(set(old_metrics) - set(new_metrics))
        only_new = sorted(set(new_metrics) - set(old_metrics))
        if not args.quiet:
            for name in only_old:
                print(f"note: {file_name}: '{name}' only in baseline")
            for name in only_new:
                print(f"note: {file_name}: '{name}' only in candidate")
        for name in sorted(set(old_metrics) & set(new_metrics)):
            old_value = old_metrics[name]
            new_value = new_metrics[name]
            if old_value <= 0.0:
                continue
            compared += 1
            ratio = new_value / old_value
            line = (
                f"{file_name}: {name}: {old_value:.4g} -> {new_value:.4g} "
                f"({ratio:.2f}x baseline)"
            )
            if ratio > 1.0 + args.threshold:
                regressions.append(line)
                print(f"REGRESSION {line}")
            elif ratio < 1.0 - args.threshold:
                improvements += 1
                if not args.quiet:
                    print(f"improved   {line}")
            elif not args.quiet:
                print(f"ok         {line}")

    missing_files = sorted(
        set(old_tree).symmetric_difference(new_tree)
    )
    for file_name in missing_files:
        side = "baseline" if file_name in old_tree else "candidate"
        print(f"note: {file_name} present only in {side}")

    print(
        f"\nbench_diff: {compared} metrics compared, "
        f"{len(regressions)} regression(s) beyond "
        f"{args.threshold:.0%}, {improvements} improvement(s)"
    )
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())

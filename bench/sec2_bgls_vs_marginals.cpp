/// \file sec2_bgls_vs_marginals.cpp
/// The paper's Sec. 2 headline claim, measured directly: gate-by-gate
/// sampling replaces the n marginal-distribution computations of the
/// conventional qubit-by-qubit method with per-gate candidate
/// probabilities, giving an enhancement "on the order of
/// f(n, 2d)/f(n, d)". On the statevector backend a marginal costs a
/// full O(2^n) reduction per measured qubit and per sample, while the
/// gate-by-gate candidate update after each gate is an O(1) amplitude
/// lookup — so BGLS's cost is dominated by the single state evolution
/// and the conventional method's by per-sample marginal sweeps.

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/baseline.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("sec2_bgls_vs_marginals");
  using namespace bgls;
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_sec2.json");

  const int n = 16;
  const std::uint64_t reps = 100;
  std::cout << "=== Sec. 2: gate-by-gate vs conventional qubit-by-qubit "
               "sampling (statevector, " << n << " qubits, " << reps
            << " samples) ===\n\n";

  struct Row {
    int depth = 0;
    double bgls_seconds = 0.0;
    double conventional_seconds = 0.0;
    double direct_seconds = 0.0;
  };
  std::vector<Row> rows;
  ConsoleTable table(
      {"depth", "bgls", "qubit-by-qubit", "ratio", "direct (inverse-CDF)"});
  for (const int depth : {5, 10, 20, 40, 80}) {
    Rng circuit_rng(static_cast<std::uint64_t>(depth) + 7);
    RandomCircuitOptions options;
    options.num_moments = depth;
    options.op_density = 0.7;
    const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

    Simulator<StateVectorState> sim{StateVectorState(n)};
    Rng rng1(1), rng2(2), rng3(3);
    Row row;
    row.depth = depth;
    row.bgls_seconds =
        median_runtime([&] { sim.sample(circuit, reps, rng1); });
    row.conventional_seconds = median_runtime([&] {
      (void)qubit_by_qubit_sample(circuit, StateVectorState(n), reps, rng2);
    });
    row.direct_seconds = median_runtime([&] {
      (void)direct_sample(circuit, StateVectorState(n), reps, rng3);
    });
    rows.push_back(row);
    table.add_row({std::to_string(depth),
                   ConsoleTable::duration(row.bgls_seconds),
                   ConsoleTable::duration(row.conventional_seconds),
                   ConsoleTable::num(row.conventional_seconds /
                                     row.bgls_seconds, 3) + "x",
                   ConsoleTable::duration(row.direct_seconds)});
  }
  table.print(std::cout);

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("sec2_bgls_vs_marginals");
  json.key("num_qubits").value(n);
  json.key("repetitions").value(reps);
  json.key("rows").begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.key("depth").value(row.depth);
    json.key("bgls_seconds").value(row.bgls_seconds);
    json.key("qubit_by_qubit_seconds").value(row.conventional_seconds);
    json.key("direct_seconds").value(row.direct_seconds);
    json.key("ratio_vs_bgls").value(row.conventional_seconds /
                                    row.bgls_seconds);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  std::cout
      << "\nBoth methods pay the one-off O(d·2^n) evolution; the "
         "conventional method adds\nn marginal sweeps (each O(2^n)) per "
         "sample, while BGLS adds only O(1) candidate\nlookups per gate "
         "per unique bitstring — its advantage grows with the sample\n"
         "budget and register width. The direct column is the strongest\n"
         "conventional baseline: one probabilities pass, then batched\n"
         "inverse-CDF draws (sample_n) at O(n) per sample.\n";
  return 0;
}

/// \file sec2_bgls_vs_marginals.cpp
/// The paper's Sec. 2 headline claim, measured directly: gate-by-gate
/// sampling replaces the n marginal-distribution computations of the
/// conventional qubit-by-qubit method with per-gate candidate
/// probabilities, giving an enhancement "on the order of
/// f(n, 2d)/f(n, d)". On the statevector backend a marginal costs a
/// full O(2^n) reduction per measured qubit and per sample, while the
/// gate-by-gate candidate update after each gate is an O(1) amplitude
/// lookup — so BGLS's cost is dominated by the single state evolution
/// and the conventional method's by per-sample marginal sweeps.

#include <iostream>

#include "bench_guard.h"

#include "circuit/random.h"
#include "core/baseline.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"
#include "util/timing.h"

int main() {
  BGLS_REQUIRE_RELEASE_BENCH("sec2_bgls_vs_marginals");
  using namespace bgls;

  const int n = 16;
  const std::uint64_t reps = 100;
  std::cout << "=== Sec. 2: gate-by-gate vs conventional qubit-by-qubit "
               "sampling (statevector, " << n << " qubits, " << reps
            << " samples) ===\n\n";

  ConsoleTable table(
      {"depth", "bgls", "qubit-by-qubit", "ratio", "direct (inverse-CDF)"});
  for (const int depth : {5, 10, 20, 40, 80}) {
    Rng circuit_rng(static_cast<std::uint64_t>(depth) + 7);
    RandomCircuitOptions options;
    options.num_moments = depth;
    options.op_density = 0.7;
    const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

    Simulator<StateVectorState> sim{StateVectorState(n)};
    Rng rng1(1), rng2(2), rng3(3);
    const double t_bgls =
        median_runtime([&] { sim.sample(circuit, reps, rng1); });
    const double t_conventional = median_runtime([&] {
      (void)qubit_by_qubit_sample(circuit, StateVectorState(n), reps, rng2);
    });
    const double t_direct = median_runtime([&] {
      (void)direct_sample(circuit, StateVectorState(n), reps, rng3);
    });
    table.add_row({std::to_string(depth), ConsoleTable::duration(t_bgls),
                   ConsoleTable::duration(t_conventional),
                   ConsoleTable::num(t_conventional / t_bgls, 3) + "x",
                   ConsoleTable::duration(t_direct)});
  }
  table.print(std::cout);
  std::cout
      << "\nBoth methods pay the one-off O(d·2^n) evolution; the "
         "conventional method adds\nn marginal sweeps (each O(2^n)) per "
         "sample, while BGLS adds only O(1) candidate\nlookups per gate "
         "per unique bitstring — its advantage grows with the sample\n"
         "budget and register width. The direct column is the strongest\n"
         "conventional baseline: one probabilities pass, then batched\n"
         "inverse-CDF draws (sample_n) at O(n) per sample.\n";
  return 0;
}

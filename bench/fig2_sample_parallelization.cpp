/// \file fig2_sample_parallelization.cpp
/// Reproduces Fig. 2: with automatic sample parallelization
/// (Sec. 3.2.3) the sampling runtime saturates at large repetition
/// counts, because the bitstring→multiplicity dictionary can hold at
/// most 2^n unique entries and multinomial splitting draws each gate's
/// counts in O(#unique) rather than O(repetitions). The ablation column
/// (batching disabled) keeps growing linearly instead.

#include <iostream>

#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"
#include "util/timing.h"

int main() {
  using namespace bgls;

  const int n = 8;
  Rng circuit_rng(11);
  RandomCircuitOptions options;
  options.num_moments = 25;
  options.op_density = 0.8;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  std::cout << "=== Fig. 2: sample parallelization saturates runtime ===\n\n";
  std::cout << "workload: random " << n << "-qubit circuit, "
            << circuit.num_operations() << " operations\n\n";

  Simulator<StateVectorState> batched{StateVectorState(n)};
  SimulatorOptions off;
  off.disable_sample_parallelization = true;
  Simulator<StateVectorState> unbatched{StateVectorState(n), off};

  ConsoleTable table({"repetitions", "batched runtime", "dict peak",
                      "unbatched runtime"});
  constexpr std::uint64_t kUnbatchedCap = 10000;
  for (const std::uint64_t reps :
       {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{100},
        std::uint64_t{1000}, std::uint64_t{10000}, std::uint64_t{100000},
        std::uint64_t{1000000}}) {
    Rng rng1(3);
    const double batched_time =
        median_runtime([&] { batched.sample(circuit, reps, rng1); });
    const std::size_t dict_peak = batched.last_run_stats().max_dictionary_size;
    std::string unbatched_cell = "(skipped)";
    if (reps <= kUnbatchedCap) {
      Rng rng2(3);
      const double unbatched_time =
          median_runtime([&] { unbatched.sample(circuit, reps, rng2); });
      unbatched_cell = ConsoleTable::duration(unbatched_time);
    }
    table.add_row({std::to_string(reps), ConsoleTable::duration(batched_time),
                   std::to_string(dict_peak), unbatched_cell});
  }
  table.print(std::cout);
  std::cout << "\nThe dictionary saturates at <= 2^" << n << " = " << (1 << n)
            << " unique bitstrings, so batched runtime flattens while the\n"
               "per-repetition (unbatched) cost keeps growing linearly.\n";
  return 0;
}

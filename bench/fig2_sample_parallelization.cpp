/// \file fig2_sample_parallelization.cpp
/// Reproduces Fig. 2 and extends it with the engine's thread sweep.
///
/// Part 1 (the paper's figure): with automatic sample parallelization
/// (Sec. 3.2.3) the sampling runtime saturates at large repetition
/// counts, because the bitstring→multiplicity dictionary can hold at
/// most 2^n unique entries and multinomial splitting draws each gate's
/// counts in O(#unique) rather than O(repetitions). The ablation column
/// (batching disabled) keeps growing linearly instead.
///
/// Part 2 (beyond the paper): the BatchEngine's thread-count sweep on
/// the per-trajectory workload that dictionary batching cannot absorb
/// (a noisy circuit), plus the multinomially split batched path. A
/// histogram hash per row double-checks the determinism guarantee:
/// every thread count must print the same hash.
///
/// Part 3 (engine v2): pool reuse. A tight loop of small engine runs
/// with SimulatorOptions::reuse_thread_pool off pays thread-spawn
/// latency per call; with it on, every call shares one long-lived
/// process-wide pool (EngineContext). The loop speedup is the v2
/// headline; the large-circuit rows double-check that reuse costs
/// nothing when the run is big enough to amortize a fresh pool.
///
/// Results are also written as machine-readable JSON (BENCH_fig2.json,
/// or the path given as argv[1]) so future PRs can track the perf
/// trajectory.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/noise.h"
#include "circuit/random.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

using namespace bgls;

/// FNV-style hash of a histogram, used to demonstrate bit-identical
/// results across thread counts. The chain is order-sensitive, which is
/// fine because Counts is a std::map and iterates in sorted key order.
std::uint64_t histogram_hash(const Counts& counts) {
  std::uint64_t hash = 1469598103934665603ULL;
  for (const auto& [bits, count] : counts) {
    for (const std::uint64_t word : {bits, count}) {
      hash ^= word;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

struct SaturationRow {
  std::uint64_t repetitions = 0;
  double batched_seconds = 0.0;
  std::size_t dictionary_peak = 0;
  double unbatched_seconds = -1.0;  // < 0 when skipped
};

struct SweepRow {
  std::string path;
  int threads = 0;
  double seconds = 0.0;
  double speedup = 1.0;
  std::uint64_t hash = 0;
};

struct PoolReuseRow {
  std::string workload;
  double fresh_seconds = 0.0;
  double reused_seconds = 0.0;
  std::uint64_t fresh_hash = 0;
  std::uint64_t reused_hash = 0;
  [[nodiscard]] double speedup() const {
    return reused_seconds > 0.0 ? fresh_seconds / reused_seconds : 1.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig2_sample_parallelization");
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig2.json");

  const int n = 8;
  Rng circuit_rng(11);
  RandomCircuitOptions options;
  options.num_moments = 25;
  options.op_density = 0.8;
  const Circuit circuit = generate_random_circuit(n, options, circuit_rng);

  std::cout << "=== Fig. 2: sample parallelization saturates runtime ===\n\n";
  std::cout << "workload: random " << n << "-qubit circuit, "
            << circuit.num_operations() << " operations\n\n";

  Simulator<StateVectorState> batched{StateVectorState(n)};
  SimulatorOptions off;
  off.disable_sample_parallelization = true;
  Simulator<StateVectorState> unbatched{StateVectorState(n), off};

  std::vector<SaturationRow> saturation;
  ConsoleTable table({"repetitions", "batched runtime", "dict peak",
                      "unbatched runtime"});
  constexpr std::uint64_t kUnbatchedCap = 10000;
  for (const std::uint64_t reps :
       {std::uint64_t{1}, std::uint64_t{10}, std::uint64_t{100},
        std::uint64_t{1000}, std::uint64_t{10000}, std::uint64_t{100000},
        std::uint64_t{1000000}}) {
    SaturationRow row;
    row.repetitions = reps;
    Rng rng1(3);
    row.batched_seconds =
        median_runtime([&] { batched.sample(circuit, reps, rng1); });
    row.dictionary_peak = batched.last_run_stats().max_dictionary_size;
    std::string unbatched_cell = "(skipped)";
    if (reps <= kUnbatchedCap) {
      Rng rng2(3);
      row.unbatched_seconds =
          median_runtime([&] { unbatched.sample(circuit, reps, rng2); });
      unbatched_cell = ConsoleTable::duration(row.unbatched_seconds);
    }
    table.add_row({std::to_string(reps),
                   ConsoleTable::duration(row.batched_seconds),
                   std::to_string(row.dictionary_peak), unbatched_cell});
    saturation.push_back(row);
  }
  table.print(std::cout);
  std::cout << "\nThe dictionary saturates at <= 2^" << n << " = " << (1 << n)
            << " unique bitstrings, so batched runtime flattens while the\n"
               "per-repetition (unbatched) cost keeps growing linearly.\n";

  // --- Part 2: engine thread sweep -----------------------------------
  const int traj_qubits = 6;
  const std::uint64_t traj_reps = 2000;
  Circuit trajectory_circuit =
      with_noise(ghz_circuit(traj_qubits), depolarize(0.02));
  const std::uint64_t batched_reps = 1000000;

  std::cout << "\n=== Engine thread sweep (beyond the paper) ===\n\n"
            << "trajectory workload: noisy " << traj_qubits << "-qubit GHZ, "
            << traj_reps << " trajectories\n"
            << "batched workload: the Fig. 2 circuit, " << batched_reps
            << " repetitions, multinomially split\n"
            << "(identical 'histogram hash' across thread counts = the "
               "determinism guarantee)\n\n";

  std::vector<SweepRow> sweep;
  ConsoleTable sweep_table(
      {"path", "threads", "runtime", "speedup vs 1", "histogram hash"});
  for (const std::string& path : {std::string("trajectory"),
                                  std::string("batched")}) {
    double base_seconds = 0.0;
    for (const int threads : {1, 2, 4, 8}) {
      SimulatorOptions engine_options;
      engine_options.num_threads = threads;
      engine_options.num_rng_streams = 16;
      Simulator<StateVectorState> prototype{
          StateVectorState(path == "trajectory" ? traj_qubits : n),
          engine_options};
      BatchEngine<StateVectorState> engine{std::move(prototype)};
      const Circuit& workload =
          path == "trajectory" ? trajectory_circuit : circuit;
      const std::uint64_t reps =
          path == "trajectory" ? traj_reps : batched_reps;
      Counts counts;
      const double seconds = median_runtime([&] {
        Rng rng(3);
        counts = engine.sample(workload, reps, rng);
      });
      if (threads == 1) base_seconds = seconds;
      SweepRow row;
      row.path = path;
      row.threads = threads;
      row.seconds = seconds;
      row.speedup = seconds > 0.0 ? base_seconds / seconds : 1.0;
      row.hash = histogram_hash(counts);
      sweep.push_back(row);
      char speedup_text[32];
      std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx", row.speedup);
      char hash_text[32];
      std::snprintf(hash_text, sizeof(hash_text), "%016llx",
                    static_cast<unsigned long long>(row.hash));
      sweep_table.add_row({path, std::to_string(threads),
                           ConsoleTable::duration(seconds), speedup_text,
                           hash_text});
    }
  }
  sweep_table.print(std::cout);
  std::cout << "\n(speedup tracks the physical core count; on a single-core "
               "machine all\nthread counts cost the same wall clock while "
               "the hashes stay identical.)\n";

  // --- Part 3: pool reuse across Simulator::run calls -----------------
  const int reuse_threads = 8;
  const int small_n = 4;
  const std::uint64_t small_reps = 8;
  const int loop_iterations = 300;
  Circuit small_circuit =
      with_noise(ghz_circuit(small_n), depolarize(0.05));

  std::cout << "\n=== Engine v2: pool reuse across Simulator::run calls "
               "===\n\n"
            << "small workload: " << loop_iterations << " x (noisy "
            << small_n << "-qubit GHZ, " << small_reps
            << " trajectories), num_threads = " << reuse_threads << "\n"
            << "large workload: the Fig. 2 circuit, " << batched_reps
            << " repetitions (one call)\n"
            << "fresh = reuse_thread_pool off (v1: pool constructed per "
               "call); reused = shared pool\n\n";

  std::vector<PoolReuseRow> pool_reuse;
  ConsoleTable reuse_table({"workload", "fresh pool/call", "reused pool",
                            "speedup", "hashes match"});
  for (const std::string& workload :
       {std::string("small-run loop"), std::string("large circuit")}) {
    PoolReuseRow row;
    row.workload = workload;
    for (const bool reuse : {false, true}) {
      SimulatorOptions options;
      options.num_threads = reuse_threads;
      options.num_rng_streams = 16;
      options.reuse_thread_pool = reuse;
      std::uint64_t hash = 0;
      double seconds = 0.0;
      if (workload == "small-run loop") {
        Simulator<StateVectorState> sim{StateVectorState(small_n), options};
        seconds = median_runtime([&] {
          Counts merged;
          for (int it = 0; it < loop_iterations; ++it) {
            Rng rng(static_cast<std::uint64_t>(it));
            for (const auto& [bits, count] :
                 sim.sample(small_circuit, small_reps, rng)) {
              merged[bits] += count;
            }
          }
          hash = histogram_hash(merged);
        });
      } else {
        Simulator<StateVectorState> sim{StateVectorState(n), options};
        seconds = median_runtime([&] {
          Rng rng(3);
          hash = histogram_hash(sim.sample(circuit, batched_reps, rng));
        });
      }
      if (reuse) {
        row.reused_seconds = seconds;
        row.reused_hash = hash;
      } else {
        row.fresh_seconds = seconds;
        row.fresh_hash = hash;
      }
    }
    pool_reuse.push_back(row);
    char speedup_text[32];
    std::snprintf(speedup_text, sizeof(speedup_text), "%.2fx",
                  row.speedup());
    reuse_table.add_row({row.workload,
                         ConsoleTable::duration(row.fresh_seconds),
                         ConsoleTable::duration(row.reused_seconds),
                         speedup_text,
                         row.fresh_hash == row.reused_hash ? "yes" : "NO"});
  }
  reuse_table.print(std::cout);
  std::cout << "\nPool reuse only changes where the threads come from, "
               "never what they compute:\nthe histogram hashes must match "
               "in every row.\n";

  // --- JSON emission --------------------------------------------------
  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig2_sample_parallelization");
  json.key("workload").begin_object();
  json.key("num_qubits").value(n);
  json.key("num_operations").value(circuit.num_operations());
  json.key("trajectory_qubits").value(traj_qubits);
  json.key("trajectory_repetitions").value(traj_reps);
  json.key("batched_sweep_repetitions").value(batched_reps);
  json.end_object();
  json.key("saturation").begin_array();
  for (const SaturationRow& row : saturation) {
    json.begin_object();
    json.key("repetitions").value(row.repetitions);
    json.key("batched_seconds").value(row.batched_seconds);
    json.key("dictionary_peak").value(row.dictionary_peak);
    json.key("unbatched_seconds");
    if (row.unbatched_seconds < 0.0) {
      json.null();
    } else {
      json.value(row.unbatched_seconds);
    }
    json.end_object();
  }
  json.end_array();
  json.key("thread_sweep").begin_array();
  for (const SweepRow& row : sweep) {
    json.begin_object();
    json.key("path").value(row.path);
    json.key("threads").value(row.threads);
    json.key("seconds").value(row.seconds);
    json.key("speedup_vs_1_thread").value(row.speedup);
    json.key("histogram_hash").value(row.hash);
    json.end_object();
  }
  json.end_array();
  json.key("pool_reuse").begin_object();
  json.key("num_threads").value(reuse_threads);
  json.key("loop_iterations").value(loop_iterations);
  json.key("loop_repetitions_per_call").value(small_reps);
  json.key("rows").begin_array();
  for (const PoolReuseRow& row : pool_reuse) {
    json.begin_object();
    json.key("workload").value(row.workload);
    json.key("fresh_pool_seconds").value(row.fresh_seconds);
    json.key("reused_pool_seconds").value(row.reused_seconds);
    json.key("speedup").value(row.speedup());
    json.key("hashes_match").value(row.fresh_hash == row.reused_hash);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

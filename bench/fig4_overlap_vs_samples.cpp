/// \file fig4_overlap_vs_samples.cpp
/// Reproduces Fig. 4:
///  (a) fractional overlap with the ideal distribution as the sample
///      budget grows, for a pure-Clifford circuit (T→S copy; converges
///      to 1) versus the same circuit with T gates sampled via
///      sum-over-Cliffords (plateaus below 1 — the 2^#T stabilizer
///      branches mean a finite sample budget explores a smaller portion
///      of the output distribution, and the branch mixture itself
///      deviates from the true distribution);
///  (b) overlap versus rotation angle when every T is replaced by
///      Rz(θ): exact at Clifford angles (multiples of π/2), fluctuating
///      in between.

#include <fstream>
#include <iostream>
#include <numbers>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "stabilizer/near_clifford.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"

namespace {

using namespace bgls;
using std::numbers::pi;

Distribution exact_distribution(const Circuit& circuit, int n) {
  StateVectorState state(n);
  Rng rng(0);
  evolve(circuit, state, rng);
  Distribution dist;
  for (Bitstring b = 0; b < (Bitstring{1} << n); ++b) {
    const double p = state.probability(b);
    if (p > 1e-15) dist[b] = p;
  }
  return dist;
}

Counts sample_near_clifford(const Circuit& circuit, int n,
                            std::uint64_t reps, Rng& rng) {
  Simulator<CHState> sim{
      CHState(n),
      [](const Operation& op, CHState& state, Rng& inner) {
        act_on_near_clifford(op, state, inner);
      },
      [](const CHState& state, Bitstring b) { return state.probability(b); },
      SimulatorOptions{.skip_diagonal_updates = false,
                       .disable_sample_parallelization = true}};
  return sim.sample(circuit, reps, rng);
}

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig4_overlap_vs_samples");
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig4.json");
  struct BudgetRow {
    std::uint64_t samples = 0;
    double overlap_pure = 0.0;
    double overlap_t = 0.0;
  };
  std::vector<BudgetRow> budget_rows;
  struct AngleRow {
    double theta_over_pi = 0.0;
    double overlap = 0.0;
    double extent = 0.0;
    bool clifford_angle = false;
  };
  std::vector<AngleRow> angle_rows;
  // Workload chosen so the T gates actually interfere (they sit on
  // superposed qubits followed by further mixing): on larger random
  // Clifford circuits the branch-mixture error washes out into the
  // near-flat stabilizer distribution and the effect hides in sampling
  // noise.
  const int n = 4;
  Rng circuit_rng(17);
  const Circuit clifford_t = random_clifford_t_circuit(n, 12, 8, circuit_rng);
  const Circuit pure = with_t_gates_replaced(clifford_t, Gate::S());

  std::cout << "=== Fig. 4a: overlap vs sample budget ===\n\n";
  std::cout << "workload: random " << n
            << "-qubit Clifford circuit with 8 T gates, and its T→S "
               "pure-Clifford copy\n\n";
  {
    const auto ideal_t = exact_distribution(clifford_t, n);
    const auto ideal_pure = exact_distribution(pure, n);
    ConsoleTable table(
        {"samples", "overlap (pure Clifford)", "overlap (Clifford+T)"});
    Rng rng_pure(21), rng_t(23);
    for (const std::uint64_t reps : {std::uint64_t{100}, std::uint64_t{300},
                                     std::uint64_t{1000}, std::uint64_t{3000},
                                     std::uint64_t{10000},
                                     std::uint64_t{30000}}) {
      const double overlap_pure = distribution_overlap(
          normalize(sample_near_clifford(pure, n, reps, rng_pure)),
          ideal_pure);
      const double overlap_t = distribution_overlap(
          normalize(sample_near_clifford(clifford_t, n, reps, rng_t)),
          ideal_t);
      budget_rows.push_back({reps, overlap_pure, overlap_t});
      table.add_row({std::to_string(reps), ConsoleTable::num(overlap_pure, 4),
                     ConsoleTable::num(overlap_t, 4)});
    }
    table.print(std::cout);
    std::cout
        << "\nPure Clifford converges to overlap 1; the sum-over-Cliffords\n"
           "sampler lags and plateaus below 1 (the paper's 'noticeable "
           "lag').\n\n";
  }

  std::cout << "=== Fig. 4b: Clifford+Rz(θ) overlap vs angle ===\n\n";
  {
    const std::uint64_t reps = 20000;
    // The per-gate stabilizer extent proxy (|c_I| + |c_S|)² quantifies
    // how non-Clifford each angle is; overlap should anti-correlate
    // with it (the paper floats exploiting its minima as "a more
    // efficient alternative to T gates").
    ConsoleTable table(
        {"theta/pi", "overlap", "extent (|cI|+|cS|)^2", "clifford angle?"});
    Rng rng(29);
    const int points = 16;
    for (int k = 0; k <= points; ++k) {
      const double theta = 2.0 * pi * k / points;
      const Circuit rotated =
          with_t_gates_replaced(clifford_t, Gate::Rz(theta));
      const auto ideal = exact_distribution(rotated, n);
      const double overlap = distribution_overlap(
          normalize(sample_near_clifford(rotated, n, reps, rng)), ideal);
      const bool clifford_angle =
          std::abs(std::remainder(theta, pi / 2.0)) < 1e-9;
      const double c_identity =
          std::abs(std::cos(theta / 2.0) - std::sin(theta / 2.0));
      const double c_s = std::sqrt(2.0) * std::abs(std::sin(theta / 2.0));
      const double extent =
          (c_identity + c_s) * (c_identity + c_s);
      angle_rows.push_back({theta / pi, overlap,
                            clifford_angle ? 1.0 : extent, clifford_angle});
      table.add_row({ConsoleTable::num(theta / pi, 3),
                     ConsoleTable::num(overlap, 4),
                     ConsoleTable::num(clifford_angle ? 1.0 : extent, 4),
                     clifford_angle ? "yes" : ""});
    }
    table.print(std::cout);
    std::cout << "\nOverlap fluctuates with θ and touches 1 (up to sampling "
                 "noise) exactly\nat the Clifford angles θ ∈ {0, π/2, π, "
                 "3π/2, 2π}; dips track the stabilizer extent.\n";
  }

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig4_overlap_vs_samples");
  json.key("overlap_vs_budget").begin_array();
  for (const BudgetRow& row : budget_rows) {
    json.begin_object();
    json.key("samples").value(row.samples);
    json.key("overlap_pure_clifford").value(row.overlap_pure);
    json.key("overlap_clifford_t").value(row.overlap_t);
    json.end_object();
  }
  json.end_array();
  json.key("overlap_vs_angle").begin_array();
  for (const AngleRow& row : angle_rows) {
    json.begin_object();
    json.key("theta_over_pi").value(row.theta_over_pi);
    json.key("overlap").value(row.overlap);
    json.key("extent").value(row.extent);
    json.key("clifford_angle").value(row.clifford_angle);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

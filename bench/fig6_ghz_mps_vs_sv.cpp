/// \file fig6_ghz_mps_vs_sv.cpp
/// Reproduces Fig. 6: sampling runtime for randomly-sequenced GHZ
/// circuits of increasing width, MPS versus statevector.
///
/// Reproduction note (see EXPERIMENTS.md): the paper observes
/// exponential runtime for *both* representations and uses GHZ as a
/// cautionary tale for "blindly" simulating maximally entangled states
/// with tensor networks. Our SVD split compresses every bond to the
/// true Schmidt rank (χ = 2 for GHZ), so the MPS series here stays
/// cheap while the statevector series is exponential — the honest
/// outcome of a compressing implementation. To still exhibit the
/// paper's underlying claim ("MPS scales exponentially with
/// entanglement"), a second table runs volume-law random circuits,
/// where bond dimensions — and MPS runtime — genuinely explode.

#include <fstream>
#include <iostream>
#include <vector>

#include "bench_guard.h"
#include "bench_json.h"

#include "circuit/random.h"
#include "core/simulator.h"
#include "mps/state.h"
#include "statevector/state.h"
#include "util/json_writer.h"
#include "util/table.h"
#include "util/timing.h"

namespace {

using namespace bgls;

double time_mps(const Circuit& circuit, int n, std::uint64_t reps,
                std::size_t* chi_out = nullptr) {
  Simulator<MPSState> sim{MPSState(n)};
  Rng rng(3);
  const double t = median_runtime([&] { sim.sample(circuit, reps, rng); });
  if (chi_out != nullptr) {
    MPSState state(n);
    for (const auto& op : circuit.all_operations()) {
      if (!op.gate().is_measurement()) state.apply(op);
    }
    *chi_out = state.max_bond_dimension();
  }
  return t;
}

double time_sv(const Circuit& circuit, int n, std::uint64_t reps) {
  Simulator<StateVectorState> sim{StateVectorState(n)};
  Rng rng(5);
  return median_runtime([&] { sim.sample(circuit, reps, rng); });
}

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("fig6_ghz_mps_vs_sv");
  const std::string json_path =
      bench::bench_json_path(argc, argv, "BENCH_fig6.json");
  const std::uint64_t reps = 100;
  struct Row {
    int width = 0;
    double mps_seconds = 0.0;
    double sv_seconds = 0.0;
    std::size_t chi = 0;
  };
  std::vector<Row> ghz_rows, volume_rows;
  double ghz_sv_slope = 0.0;

  std::cout << "=== Fig. 6: random-GHZ sampling, MPS vs statevector ===\n\n";
  {
    ConsoleTable table({"width", "mps", "statevector", "mps chi"});
    std::vector<double> widths, sv_times;
    for (const int n : {2, 4, 6, 8, 10, 12, 14, 16, 18, 20}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n));
      const Circuit circuit = random_ghz_circuit(n, circuit_rng);
      std::size_t chi = 0;
      const double tm = time_mps(circuit, n, reps, &chi);
      const double ts = time_sv(circuit, n, reps);
      widths.push_back(n);
      sv_times.push_back(ts);
      ghz_rows.push_back({n, tm, ts, chi});
      table.add_row({std::to_string(n), ConsoleTable::duration(tm),
                     ConsoleTable::duration(ts), std::to_string(chi)});
    }
    table.print(std::cout);
    ghz_sv_slope = log_log_slope(widths, sv_times);
    std::cout << "\nstatevector log-log slope vs width: "
              << ConsoleTable::num(ghz_sv_slope, 3)
              << " (super-linear; 2^n amplitudes)\n"
              << "Our compressing split keeps GHZ at chi = 2, so the MPS "
                 "series stays flat\n(deviation from the paper's quimb "
                 "backend — documented in EXPERIMENTS.md).\n\n";
  }

  std::cout << "=== Fig. 6 companion: volume-law entanglement kills MPS "
               "===\n\n";
  {
    ConsoleTable table({"width", "mps", "statevector", "mps chi"});
    for (const int n : {4, 6, 8, 10, 12}) {
      Rng circuit_rng(static_cast<std::uint64_t>(n) + 50);
      RandomCircuitOptions options;
      options.num_moments = n;  // depth ~ width: volume-law regime
      options.op_density = 0.9;
      options.gate_domain = {Gate::H(), Gate::T(),  Gate::Rx(0.7),
                             Gate::CX(), Gate::ISwap()};
      const Circuit circuit = generate_random_circuit(n, options, circuit_rng);
      std::size_t chi = 0;
      const double tm = time_mps(circuit, n, /*reps=*/20, &chi);
      const double ts = time_sv(circuit, n, /*reps=*/20);
      volume_rows.push_back({n, tm, ts, chi});
      table.add_row({std::to_string(n), ConsoleTable::duration(tm),
                     ConsoleTable::duration(ts), std::to_string(chi)});
    }
    table.print(std::cout);
    std::cout << "\nWith depth ~ width the bond dimension grows "
                 "exponentially (chi ~ 2^{n/2}),\nand MPS sampling becomes "
                 "far slower than the statevector — the paper's\n"
                 "'one needs particular care with tensor network states' "
                 "message.\n";
  }

  std::ofstream json_file = bench::open_bench_json(json_path);
  if (!json_file) return 1;
  const auto emit_rows = [](JsonWriter& json, const std::vector<Row>& rows) {
    json.begin_array();
    for (const Row& row : rows) {
      json.begin_object();
      json.key("width").value(row.width);
      json.key("mps_seconds").value(row.mps_seconds);
      json.key("sv_seconds").value(row.sv_seconds);
      json.key("mps_chi").value(row.chi);
      json.end_object();
    }
    json.end_array();
  };
  JsonWriter json(json_file);
  json.begin_object();
  json.key("figure").value("fig6_ghz_mps_vs_sv");
  json.key("repetitions").value(reps);
  json.key("sv_log_log_slope_ghz").value(ghz_sv_slope);
  json.key("random_ghz");
  emit_rows(json, ghz_rows);
  json.key("volume_law");
  emit_rows(json, volume_rows);
  json.end_object();
  json_file << "\n";
  bench::report_bench_json(json_path);
  return 0;
}

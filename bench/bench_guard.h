/// \file bench_guard.h
/// Refuses to run benchmarks from a non-Release build.
///
/// The original BENCH_micro_states.json was once recorded from a DEBUG
/// build (google-benchmark's "Library was built as DEBUG" warning was
/// embedded in the JSON), silently poisoning the perf trajectory. Every
/// bench main() now calls BGLS_REQUIRE_RELEASE_BENCH() first: with
/// assertions enabled (no NDEBUG — Debug builds) it exits with an
/// explanation unless BGLS_BENCH_ALLOW_DEBUG is set, in which case it
/// only warns loudly.

#pragma once

#include <cstdio>
#include <cstdlib>

namespace bgls_bench {

inline void require_release_build(const char* bench_name) {
#ifdef NDEBUG
  (void)bench_name;
#else
  if (std::getenv("BGLS_BENCH_ALLOW_DEBUG") == nullptr) {
    std::fprintf(
        stderr,
        "%s: refusing to benchmark a non-Release build (assertions are "
        "enabled, timings would be meaningless).\n"
        "Configure with -DCMAKE_BUILD_TYPE=Release, or set "
        "BGLS_BENCH_ALLOW_DEBUG=1 to run anyway.\n",
        bench_name);
    std::exit(EXIT_FAILURE);
  }
  std::fprintf(stderr,
               "%s: ***WARNING*** non-Release build — timings are "
               "meaningless; do not record them.\n",
               bench_name);
#endif
}

}  // namespace bgls_bench

/// Call first in every bench main().
#define BGLS_REQUIRE_RELEASE_BENCH(name) \
  ::bgls_bench::require_release_build(name)

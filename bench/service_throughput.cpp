/// \file service_throughput.cpp
/// Service-layer throughput bench: jobs/second through the
/// JobScheduler for a stream of small heterogeneous requests — the
/// many-users-many-small-jobs shape the daemon serves — plus the
/// per-job overhead the scheduler adds over direct Session::run calls,
/// and the cost of streaming progress. Emits BENCH_service.json
/// (bench_diff.py tracks the trajectory across PRs).
///
///   $ ./service_throughput [BENCH_service.json]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "api/session.h"
#include "bench_guard.h"
#include "bench_json.h"
#include "circuit/random.h"
#include "obs/metrics.h"
#include "service/client.h"
#include "service/daemon.h"
#include "service/fleet.h"
#include "service/journal.h"
#include "service/protocol.h"
#include "service/result_cache.h"
#include "service/scheduler.h"
#include "util/json_writer.h"

namespace {

using namespace bgls;

Circuit small_circuit(std::uint64_t seed) {
  Rng rng(seed);
  RandomCircuitOptions options;
  options.num_moments = 12;
  options.op_density = 0.8;
  Circuit circuit = generate_random_circuit(4, options, rng);
  circuit.append(measure({0, 1, 2, 3}, "m"));
  return circuit;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Workload for the fleet row: submissions go over the wire as QASM, so
/// the fleet bench uses a fixed circuit with per-job seeds (the
/// repeat-heavy traffic shape the fleet front is built for).
const char kGhzQasm[] =
    "OPENQASM 2.0;\n"
    "include \"qelib1.inc\";\n"
    "qreg q[4];\n"
    "creg c[4];\n"
    "h q[0];\n"
    "cx q[0],q[1];\n"
    "cx q[1],q[2];\n"
    "cx q[2],q[3];\n"
    "measure q -> c;\n";

}  // namespace

int main(int argc, char** argv) {
  BGLS_REQUIRE_RELEASE_BENCH("service_throughput");
  const std::string json_path =
      bgls::bench::bench_json_path(argc, argv, "BENCH_service.json");
  std::ofstream json_file = bgls::bench::open_bench_json(json_path);
  if (!json_file) return 1;

  constexpr int kJobs = 200;
  constexpr std::uint64_t kReps = 1024;

  std::vector<Circuit> circuits;
  circuits.reserve(kJobs);
  for (int i = 0; i < kJobs; ++i) {
    circuits.push_back(small_circuit(static_cast<std::uint64_t>(i)));
  }

  JsonWriter json(json_file);
  json.begin_object();
  json.key("bench").value("service_throughput");
  json.key("jobs").value(kJobs);
  json.key("repetitions_per_job").value(kReps);
  json.key("rows").begin_array();

  std::cout << "=== Service scheduler throughput (" << kJobs
            << " jobs x " << kReps << " reps) ===\n\n";

  // Baseline: direct Session::run calls, no queue.
  {
    Session session;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kJobs; ++i) {
      (void)session.run(RunRequest()
                            .with_circuit(circuits[static_cast<std::size_t>(i)])
                            .with_repetitions(kReps)
                            .with_seed(static_cast<std::uint64_t>(i)));
    }
    const double seconds = seconds_since(start);
    std::cout << "direct Session::run    : " << seconds << " s ("
              << kJobs / seconds << " jobs/s)\n";
    json.begin_object();
    json.key("path").value("session_direct");
    json.key("seconds").value(seconds);
    json.key("jobs_per_second").value(kJobs / seconds);
    json.end_object();
  }

  // Scheduler at 1 and 2 runners; progress streaming on the last row.
  for (const auto& [runners, progress_every, label] :
       {std::tuple<int, std::uint64_t, const char*>{1, 0, "scheduler_1"},
        {2, 0, "scheduler_2"},
        {2, 256, "scheduler_2_streaming"}}) {
    service::SchedulerOptions options;
    options.max_concurrent_jobs = runners;
    options.max_queue_depth = kJobs + 1;
    service::JobScheduler scheduler(options);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    ids.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      RunRequest request =
          RunRequest()
              .with_circuit(circuits[static_cast<std::size_t>(i)])
              .with_repetitions(kReps)
              .with_seed(static_cast<std::uint64_t>(i));
      if (progress_every > 0) request.with_progress(progress_every, nullptr);
      ids.push_back(scheduler.submit(std::move(request)));
    }
    for (const std::uint64_t id : ids) (void)scheduler.wait(id);
    const double seconds = seconds_since(start);
    std::cout << label << std::string(23 - std::string(label).size(), ' ')
              << ": " << seconds << " s (" << kJobs / seconds
              << " jobs/s)\n";
    json.begin_object();
    json.key("path").value(label);
    json.key("runners").value(runners);
    json.key("progress_every").value(progress_every);
    json.key("seconds").value(seconds);
    json.key("jobs_per_second").value(kJobs / seconds);
    json.end_object();
  }

  // Durability overhead: the scheduler_1 shape with a write-ahead
  // journal in the loop — one fsync'd submit record per job, periodic
  // checkpoint records through the scheduler hook, and a terminal
  // record per job (the `bgls_serve --journal` configuration).
  {
    const std::string journal_path = "/tmp/bgls_bench_journal_" +
                                     std::to_string(::getpid()) + ".ndjson";
    std::remove(journal_path.c_str());
    service::Journal journal;
    journal.open(journal_path);
    service::SchedulerOptions options;
    options.max_concurrent_jobs = 1;
    options.max_queue_depth = kJobs + 1;
    options.checkpoint_every = 256;
    options.on_terminal = [&](const service::JobInfo& info) {
      journal.append(
          "{\"type\":\"terminal\",\"job\":" + std::to_string(info.id) +
          ",\"state\":\"" + std::string(job_state_name(info.state)) + "\"}");
    };
    options.on_checkpoint = [&](std::uint64_t id,
                                std::shared_ptr<const RunCheckpoint> ckpt) {
      journal.append("{\"type\":\"checkpoint\",\"job\":" + std::to_string(id) +
                     ",\"data\":" + ckpt->to_json() + "}");
    };
    service::JobScheduler scheduler(options);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    ids.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      const std::uint64_t id = scheduler.submit(
          RunRequest()
              .with_circuit(circuits[static_cast<std::size_t>(i)])
              .with_repetitions(kReps)
              .with_seed(static_cast<std::uint64_t>(i)));
      journal.append("{\"type\":\"submit\",\"job\":" + std::to_string(id) +
                     "}");
      ids.push_back(id);
    }
    for (const std::uint64_t id : ids) (void)scheduler.wait(id);
    const double seconds = seconds_since(start);
    const std::uint64_t records = journal.records_written();
    journal.close();
    std::remove(journal_path.c_str());
    std::cout << "scheduler_1_journal    : " << seconds << " s ("
              << kJobs / seconds << " jobs/s, " << records
              << " fsync'd records)\n";
    json.begin_object();
    json.key("path").value("scheduler_1_journal");
    json.key("runners").value(1);
    json.key("checkpoint_every").value(256);
    json.key("journal_records").value(records);
    json.key("seconds").value(seconds);
    json.key("jobs_per_second").value(kJobs / seconds);
    json.end_object();
  }

  // Result-cache hit path: the scheduler_1 shape run twice against a
  // shared ResultCache. The first pass samples (all misses); the second
  // submits the identical requests and is answered entirely from the
  // cache — the row records the hot pass, i.e. the map-lookup-only
  // throughput a repeat-heavy workload sees.
  {
    auto cache = std::make_shared<service::ResultCache>();
    service::SchedulerOptions options;
    options.max_concurrent_jobs = 1;
    options.max_queue_depth = kJobs + 1;
    options.result_cache = cache;
    service::JobScheduler scheduler(options);
    const auto submit_all = [&] {
      std::vector<std::uint64_t> ids;
      ids.reserve(kJobs);
      for (int i = 0; i < kJobs; ++i) {
        ids.push_back(scheduler.submit(
            RunRequest()
                .with_circuit(circuits[static_cast<std::size_t>(i)])
                .with_repetitions(kReps)
                .with_seed(static_cast<std::uint64_t>(i))));
      }
      for (const std::uint64_t id : ids) (void)scheduler.wait(id);
    };
    const auto cold_start = std::chrono::steady_clock::now();
    submit_all();
    const double cold_seconds = seconds_since(cold_start);
    const auto hot_start = std::chrono::steady_clock::now();
    submit_all();
    const double hot_seconds = seconds_since(hot_start);
    const service::ResultCache::Stats cache_stats = cache->stats();
    std::cout << "scheduler_1_cache_hit  : " << hot_seconds << " s ("
              << kJobs / hot_seconds << " jobs/s; cold pass "
              << cold_seconds << " s, " << cache_stats.hits << " hits)\n";
    json.begin_object();
    json.key("path").value("scheduler_1_cache_hit");
    json.key("runners").value(1);
    json.key("cold_seconds").value(cold_seconds);
    json.key("cache_hits").value(cache_stats.hits);
    json.key("cache_misses").value(cache_stats.misses);
    json.key("seconds").value(hot_seconds);
    json.key("jobs_per_second").value(kJobs / hot_seconds);
    json.end_object();
  }

  // Tracing overhead: the scheduler_1 shape with every request
  // carrying a propagated trace context (the fleet-fronted
  // configuration), so each job records its queue/run/sample span tree
  // into a per-job Trace. Compare against scheduler_1: the delta is
  // the per-job cost of distributed tracing (ISSUE acceptance: within
  // the 2% telemetry bar).
  {
    service::SchedulerOptions options;
    options.max_concurrent_jobs = 1;
    options.max_queue_depth = kJobs + 1;
    service::JobScheduler scheduler(options);
    const auto start = std::chrono::steady_clock::now();
    std::vector<std::uint64_t> ids;
    ids.reserve(kJobs);
    for (int i = 0; i < kJobs; ++i) {
      ids.push_back(scheduler.submit(
          RunRequest()
              .with_circuit(circuits[static_cast<std::size_t>(i)])
              .with_repetitions(kReps)
              .with_seed(static_cast<std::uint64_t>(i))
              .with_trace_context(static_cast<std::uint64_t>(424242 + i),
                                  /*parent_span_id=*/1)));
    }
    for (const std::uint64_t id : ids) (void)scheduler.wait(id);
    const double seconds = seconds_since(start);
    std::cout << "scheduler_1_traced     : " << seconds << " s ("
              << kJobs / seconds << " jobs/s)\n";
    json.begin_object();
    json.key("path").value("scheduler_1_traced");
    json.key("runners").value(1);
    json.key("seconds").value(seconds);
    json.key("jobs_per_second").value(kJobs / seconds);
    json.end_object();
  }

  // Fleet front: two in-process worker daemons behind a FleetDaemon,
  // driven through a real ServiceClient over Unix sockets — jobs/s
  // including the wire protocol and the fleet's placement/proxy hop.
  {
    const std::string base =
        "/tmp/bgls_bench_fleet_" + std::to_string(::getpid());
    service::DaemonOptions worker_options;
    worker_options.scheduler.max_concurrent_jobs = 1;
    worker_options.scheduler.max_queue_depth = kJobs + 1;
    worker_options.endpoint = service::Endpoint::parse("unix:" + base +
                                                       "_w1.sock");
    service::ServiceDaemon worker1(worker_options);
    worker_options.endpoint = service::Endpoint::parse("unix:" + base +
                                                       "_w2.sock");
    service::ServiceDaemon worker2(worker_options);
    worker1.start();
    worker2.start();
    service::FleetOptions fleet_options;
    fleet_options.endpoint =
        service::Endpoint::parse("unix:" + base + "_front.sock");
    fleet_options.workers = {worker1.endpoint(), worker2.endpoint()};
    service::FleetDaemon fleet(fleet_options);
    fleet.start();
    double seconds = 0;
    {
      service::ServiceClient client(fleet.endpoint());
      const auto start = std::chrono::steady_clock::now();
      std::vector<std::uint64_t> ids;
      ids.reserve(kJobs);
      for (int i = 0; i < kJobs; ++i) {
        service::SubmitArgs args;
        args.qasm = kGhzQasm;
        args.repetitions = kReps;
        args.seed = static_cast<std::uint64_t>(i);
        ids.push_back(client.submit(args));
      }
      for (const std::uint64_t id : ids) (void)client.wait_report(id);
      seconds = seconds_since(start);
    }
    fleet.stop();
    worker1.stop();
    worker2.stop();
    std::cout << "fleet_2_workers        : " << seconds << " s ("
              << kJobs / seconds << " jobs/s)\n";
    json.begin_object();
    json.key("path").value("fleet_2_workers");
    json.key("workers").value(2);
    json.key("seconds").value(seconds);
    json.key("jobs_per_second").value(kJobs / seconds);
    json.end_object();
  }

  json.end_array();

  // Final telemetry snapshot (Session::metrics_snapshot()): the
  // scheduler/engine/kernel totals the whole bench accumulated, so the
  // BENCH file records *what ran* (applies per kernel class, shards,
  // queue waits) next to how fast it ran. Scalar series emit their
  // value; histograms emit count + sum. Empty when compiled out.
  json.key("metrics").begin_object();
  for (const obs::SeriesSnapshot& series : Session::metrics_snapshot()) {
    switch (series.kind) {
      case obs::SeriesSnapshot::Kind::kCounter:
        json.key(series.name).value(series.count);
        break;
      case obs::SeriesSnapshot::Kind::kGauge:
        json.key(series.name).value(series.gauge);
        break;
      case obs::SeriesSnapshot::Kind::kHistogram:
        json.key(series.name).begin_object();
        json.key("count").value(series.count);
        json.key("sum").value(series.sum);
        json.end_object();
        break;
    }
  }
  json.end_object();

  json.end_object();
  json_file << "\n";
  bgls::bench::report_bench_json(json_path);
  return 0;
}

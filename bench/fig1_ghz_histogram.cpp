/// \file fig1_ghz_histogram.cpp
/// Reproduces Fig. 1: measurement results for a simple GHZ circuit
/// sampled with the bgls Simulator. The paper plots a 10-repetition
/// histogram; we print that plus a high-statistics run with a
/// goodness-of-fit check against the ideal 50/50 distribution.

#include <iostream>

#include "bench_guard.h"

#include "circuit/diagram.h"
#include "core/simulator.h"
#include "statevector/state.h"
#include "util/table.h"

int main() {
  BGLS_REQUIRE_RELEASE_BENCH("fig1_ghz_histogram");
  using namespace bgls;

  std::cout << "=== Fig. 1: GHZ measurement histogram ===\n\n";
  Circuit circuit{h(0), cnot(0, 1), measure({0, 1}, "z")};
  std::cout << to_text_diagram(circuit) << "\n";

  Simulator<StateVectorState> simulator{StateVectorState(2)};
  Rng rng(2023);

  const Result ten = simulator.run(circuit, 10, rng);
  std::cout << "10 repetitions (the paper's plot):\n";
  print_histogram(std::cout, ten.histogram("z"), 2);

  const std::uint64_t reps = 100000;
  const Result many = simulator.run(circuit, reps, rng);
  std::cout << "\n" << reps << " repetitions:\n";
  print_histogram(std::cout, many.histogram("z"), 2);

  const Distribution ideal{{from_string("00"), 0.5},
                           {from_string("11"), 0.5}};
  const auto fit = chi_square(many.histogram("z"), ideal);
  std::cout << "\nchi-square vs ideal 50/50: " << fit.statistic << " on "
            << fit.degrees_of_freedom
            << " dof (should be O(1); only 00 and 11 ever appear)\n";
  return 0;
}
